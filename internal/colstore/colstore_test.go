package colstore

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"vani/internal/trace"
)

func sampleTrace() *trace.Trace {
	tr := trace.NewTracer()
	app := tr.AppID("app")
	f1, f2 := tr.FileID("/a"), tr.FileID("/b")
	mk := func(op trace.Op, rank int32, file int32, size int64, start, end time.Duration) {
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: rank, Node: rank / 4,
			App: app, File: file, Size: size, Start: start, End: end,
		})
	}
	mk(trace.OpOpen, 0, f1, 0, 0, time.Millisecond)
	mk(trace.OpWrite, 0, f1, 4096, time.Millisecond, 3*time.Millisecond)
	mk(trace.OpWrite, 1, f2, 8192, 2*time.Millisecond, 5*time.Millisecond)
	mk(trace.OpRead, 1, f2, 1024, 5*time.Millisecond, 6*time.Millisecond)
	mk(trace.OpClose, 0, f1, 0, 6*time.Millisecond, 7*time.Millisecond)
	return tr.Finish()
}

// bigTrace spans multiple chunks so parallel kernels exercise the
// chunk-boundary and reduction paths.
func bigTrace(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := trace.NewTracer()
	app := tr.AppID("app")
	files := []int32{tr.FileID("/a"), tr.FileID("/b"), tr.FileID("/c")}
	var clock time.Duration
	for i := 0; i < n; i++ {
		clock += time.Duration(rng.Intn(1000)) * time.Nanosecond
		op := trace.OpRead
		if rng.Intn(2) == 0 {
			op = trace.OpWrite
		}
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: int32(rng.Intn(8)),
			Node: int32(rng.Intn(2)), App: app, File: files[rng.Intn(3)],
			Size: int64(rng.Intn(1 << 12)), Start: clock,
			End: clock + time.Duration(rng.Intn(500))*time.Nanosecond,
		})
	}
	return tr.Finish()
}

func TestFromTraceTransposes(t *testing.T) {
	tr := sampleTrace()
	tb := FromTrace(tr)
	if tb.Len() != len(tr.Events) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(tr.Events))
	}
	for i := range tr.Events {
		ev := tr.Events[i]
		if trace.Op(tb.Op(i)) != ev.Op || tb.Rank(i) != ev.Rank ||
			tb.Size(i) != ev.Size || time.Duration(tb.Start(i)) != ev.Start {
			t.Fatalf("row %d transposed wrong", i)
		}
	}
}

func TestBuilderMatchesFromEvents(t *testing.T) {
	tr := bigTrace(3*ChunkRows+17, 11)
	want := FromEvents(tr.Events, 0)
	b := NewBuilder()
	// Mix single appends and batches to exercise both paths.
	b.Append(&tr.Events[0])
	b.AppendEvents(tr.Events[1:])
	got := b.Finish()
	if got.Len() != want.Len() || got.NumChunks() != want.NumChunks() {
		t.Fatalf("builder shape: len=%d chunks=%d, want len=%d chunks=%d",
			got.Len(), got.NumChunks(), want.Len(), want.NumChunks())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Op(i) != want.Op(i) || got.Rank(i) != want.Rank(i) ||
			got.Size(i) != want.Size(i) || got.Start(i) != want.Start(i) ||
			got.End(i) != want.End(i) || got.File(i) != want.File(i) {
			t.Fatalf("row %d differs between builder and transpose", i)
		}
	}
}

func TestChunkGeometry(t *testing.T) {
	tb := FromEvents(bigTrace(2*ChunkRows+5, 3).Events, 0)
	if tb.NumChunks() != 3 {
		t.Fatalf("chunks = %d, want 3", tb.NumChunks())
	}
	for k := 0; k < tb.NumChunks(); k++ {
		c := tb.ChunkAt(k)
		if c.Base != k*ChunkRows {
			t.Errorf("chunk %d base = %d", k, c.Base)
		}
		if len(c.Size) != c.N || len(c.Start) != c.N {
			t.Errorf("chunk %d columns not trimmed to N=%d", k, c.N)
		}
	}
	if tb.ChunkAt(2).N != 5 {
		t.Errorf("last chunk N = %d, want 5", tb.ChunkAt(2).N)
	}
}

func TestPredicatesAndAggregates(t *testing.T) {
	tb := FromTrace(sampleTrace())
	if got := tb.SumSize(1, tb.IsData); got != 4096+8192+1024 {
		t.Errorf("data bytes = %d", got)
	}
	if got := tb.Count(1, tb.IsMeta); got != 2 {
		t.Errorf("meta count = %d", got)
	}
	if got := tb.Count(1, nil); got != tb.Len() {
		t.Errorf("nil pred count = %d", got)
	}
	writes := tb.Select(func(i int) bool { return trace.Op(tb.Op(i)) == trace.OpWrite })
	if writes.Len() != 2 || writes.SumSize(1, nil) != 4096+8192 {
		t.Errorf("writes table wrong: len=%d", writes.Len())
	}
}

func TestSumDur(t *testing.T) {
	tb := FromTrace(sampleTrace())
	want := 1*time.Millisecond + 2*time.Millisecond + 3*time.Millisecond +
		1*time.Millisecond + 1*time.Millisecond
	if got := tb.SumDur(1, nil); got != want {
		t.Errorf("SumDur = %v, want %v", got, want)
	}
}

func TestTimeExtent(t *testing.T) {
	tb := FromTrace(sampleTrace())
	if tb.MinStart() != 0 || tb.MaxEnd() != 7*time.Millisecond {
		t.Errorf("extent = [%v, %v]", tb.MinStart(), tb.MaxEnd())
	}
	empty := &Table{}
	if empty.MinStart() != 0 || empty.MaxEnd() != 0 {
		t.Error("empty extent not zero")
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	tb := FromTrace(sampleTrace())
	g := tb.GroupByCol(1, ColFile)
	if len(g.Keys) != 2 {
		t.Fatalf("groups = %d, want 2", len(g.Keys))
	}
	// First-encounter order: file of first event first.
	if g.Keys[0] != tb.File(0) {
		t.Error("keys not in first-encounter order")
	}
	total := 0
	for _, rows := range g.Groups {
		total += len(rows)
	}
	if total != tb.Len() {
		t.Errorf("group rows = %d, want %d", total, tb.Len())
	}
}

func TestGroupByRank(t *testing.T) {
	tb := FromTrace(sampleTrace())
	g := tb.GroupByCol(1, ColRank)
	if len(g.Groups[0]) != 3 || len(g.Groups[1]) != 2 {
		t.Errorf("rank groups wrong: %v", g.Groups)
	}
}

func TestTakePreservesValues(t *testing.T) {
	tb := FromTrace(sampleTrace())
	sub := tb.Take([]int{1, 3})
	if sub.Len() != 2 || sub.Size(0) != 4096 || sub.Size(1) != 1024 {
		t.Errorf("Take wrong: %d %d", sub.Size(0), sub.Size(1))
	}
}

func TestForEachChunkCoversAllRows(t *testing.T) {
	tb := FromEvents(bigTrace(2*ChunkRows+100, 9).Events, 0)
	var rows, chunks, next int
	tb.ForEachChunk(func(c *Chunk) {
		chunks++
		rows += c.N
		if c.Base != next {
			t.Errorf("chunk base %d, want %d", c.Base, next)
		}
		next += c.N
	})
	if rows != tb.Len() {
		t.Errorf("chunked rows = %d, want %d", rows, tb.Len())
	}
	if chunks != tb.NumChunks() {
		t.Errorf("chunks = %d, want %d", chunks, tb.NumChunks())
	}
}

// The core determinism property of the tentpole: every parallel kernel
// produces bit-identical results at any worker count.
func TestParallelKernelsMatchSequential(t *testing.T) {
	tb := FromEvents(bigTrace(3*ChunkRows+4321, 21).Events, 0)
	isWrite := func(i int) bool { return trace.Op(tb.Op(i)) == trace.OpWrite }

	wantCount := tb.Count(1, isWrite)
	wantSize := tb.SumSize(1, isWrite)
	wantDur := tb.SumDur(1, isWrite)
	wantG := tb.GroupByCol(1, ColRank)

	for _, par := range []int{0, 2, 4, 16} {
		if got := tb.Count(par, isWrite); got != wantCount {
			t.Errorf("par=%d Count = %d, want %d", par, got, wantCount)
		}
		if got := tb.SumSize(par, isWrite); got != wantSize {
			t.Errorf("par=%d SumSize = %d, want %d", par, got, wantSize)
		}
		if got := tb.SumDur(par, isWrite); got != wantDur {
			t.Errorf("par=%d SumDur = %v, want %v", par, got, wantDur)
		}
		g := tb.GroupByCol(par, ColRank)
		if len(g.Keys) != len(wantG.Keys) {
			t.Fatalf("par=%d group key count differs", par)
		}
		for i := range g.Keys {
			if g.Keys[i] != wantG.Keys[i] {
				t.Fatalf("par=%d key order differs at %d", par, i)
			}
		}
		for _, key := range g.Keys {
			a, b := g.Groups[key], wantG.Groups[key]
			if len(a) != len(b) {
				t.Fatalf("par=%d group %d size differs", par, key)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("par=%d group %d row order differs", par, key)
				}
			}
		}
	}
}

func TestFusedScanMatchesIndividualKernels(t *testing.T) {
	tb := FromEvents(bigTrace(2*ChunkRows+999, 33).Events, 0)
	isRead := func(i int) bool { return trace.Op(tb.Op(i)) == trace.OpRead }
	isWrite := func(i int) bool { return trace.Op(tb.Op(i)) == trace.OpWrite }

	for _, par := range []int{1, 4} {
		all := &Agg{}
		rd := &Agg{Pred: isRead}
		wr := &Agg{Pred: isWrite}
		tb.Scan(par, all, rd, wr)
		if all.Count != int64(tb.Len()) || all.Bytes != tb.SumSize(1, nil) || all.Dur() != tb.SumDur(1, nil) {
			t.Errorf("par=%d fused all-agg mismatch", par)
		}
		if rd.Count != int64(tb.Count(1, isRead)) || rd.Bytes != tb.SumSize(1, isRead) {
			t.Errorf("par=%d fused read-agg mismatch", par)
		}
		if wr.Count != int64(tb.Count(1, isWrite)) || wr.Dur() != tb.SumDur(1, isWrite) {
			t.Errorf("par=%d fused write-agg mismatch", par)
		}
	}
}

// Property: fused Scan over random predicates equals separate kernels, at
// parallelism drawn from the input.
func TestFusedScanEquivalenceProperty(t *testing.T) {
	tb := FromTrace(sampleTrace())
	f := func(threshold uint16, parRaw uint8) bool {
		par := int(parRaw%8) + 1
		p := func(i int) bool { return tb.Size(i) > int64(threshold) }
		a := &Agg{Pred: p}
		tb.Scan(par, a)
		return a.Count == int64(tb.Count(1, p)) &&
			a.Bytes == tb.SumSize(1, p) && a.Dur() == tb.SumDur(1, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Select(p) ∪ Select(!p) partitions the table.
func TestSelectPartitionProperty(t *testing.T) {
	tb := FromTrace(sampleTrace())
	f := func(threshold uint16) bool {
		p := func(i int) bool { return tb.Size(i) > int64(threshold) }
		a := tb.Select(p)
		b := tb.Select(func(i int) bool { return !p(i) })
		return a.Len()+b.Len() == tb.Len() &&
			a.SumSize(1, nil)+b.SumSize(1, nil) == tb.SumSize(1, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
