package colstore

// Run-aware scan kernels. The v2.2 trace format RLE-encodes key columns
// that arrive in runs (rank and node after the k-way merge, app and file in
// phase-structured workloads); DecodeRuns surfaces those runs without
// expanding them to rows, and the kernels below consume them directly —
// counting a 16K-row chunk by a handful of run lengths instead of 16K
// comparisons, and skipping Size decodes entirely for chunks whose runs
// rule every row out. Results are exactly equal to the row-iteration
// fallback at any parallelism.

import (
	"math"
	"math/bits"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// numKeyCols is the number of groupable key columns (ColRank..ColFile).
const numKeyCols = 4

// Run-summary column indices. The first numKeyCols entries are the
// groupable key columns, indexed by Col; level and op follow so span-fused
// kernels can hoist per-row dispatch out to span boundaries.
const (
	runLevel = numKeyCols + iota
	runOp
	numRunCols
)

// traceCol returns the trace-layer column set bit for a key column.
func (col Col) traceCol() trace.ColSet {
	switch col {
	case ColRank:
		return trace.ColRank
	case ColNode:
		return trace.ColNode
	case ColApp:
		return trace.ColApp
	case ColFile:
		return trace.ColFile
	}
	return 0
}

// runColSet returns the trace-layer column set bit for a run column index.
func runColSet(ri int) trace.ColSet {
	switch ri {
	case runLevel:
		return trace.ColLevel
	case runOp:
		return trace.ColOp
	}
	return Col(ri).traceCol()
}

// runBounds returns the value range outside which a run column's decode
// validation (or integer conversion) would disagree with the stored value.
func runBounds(ri int) (lo, hi int64) {
	switch ri {
	case runLevel, runOp:
		return 0, math.MaxUint8 // decode truncates with uint8(v)
	case int(ColRank), int(ColNode):
		return 0, math.MaxInt32 // decode rejects out-of-range values
	}
	return math.MinInt32, math.MaxInt32
}

// captureRuns snapshots the value-run summaries of the run columns from a
// whole-block chunk (sel == nil: chunk rows are exactly the block's rows,
// in order): RLE runs directly, dict segments as coalesced code runs. Runs
// whose values would fail the column's decode validation are dropped, so a
// captured summary always agrees with the materialized column; so are
// summaries denser than one run per four rows, where run iteration stops
// paying for itself and the expanded summary would out-weigh the column.
func (c *Chunk) captureRuns(bd *trace.BlockData) {
	for ri := 0; ri < numRunCols; ri++ {
		idx := bits.TrailingZeros64(uint64(runColSet(ri)))
		cur, err := bd.SegCursorAt(idx)
		if err != nil || cur == nil {
			continue
		}
		runs := cur.AppendRuns(nil)
		codec := cur.Codec()
		cur.Release()
		if runs == nil || len(runs)*4 > c.N {
			continue
		}
		lo, hi := runBounds(ri)
		ok := true
		for _, r := range runs {
			if r.Val < lo || r.Val > hi {
				ok = false
				break
			}
		}
		if ok {
			c.runs[ri] = runs
			c.runCodec[ri] = codec
		}
	}
}

// HasRuns reports whether the chunk carries a run summary for the key
// column (observability for tests and benchmarks).
func (c *Chunk) HasRuns(col Col) bool { return c.runs[col] != nil }

// runsMatching counts the rows of c whose key column equals val using the
// run summary. Valid only when c.runs[col] != nil.
func (c *Chunk) runsMatching(col Col, val int32) int64 {
	var n int64
	for _, r := range c.runs[col] {
		if int32(r.Val) == val {
			n += int64(r.N)
		}
	}
	return n
}

// CountEq counts rows whose key column equals val, chunk-parallel. Chunks
// carrying a run summary are counted from run lengths without materializing
// (or iterating) the column.
func (t *Table) CountEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if KernelsEnabled() && c.runUsable(KCountEq, int(col)) {
			t.tickKernel(KCountEq, true)
			parts[k] = c.runsMatching(col, val)
			return
		}
		t.tickKernel(KCountEq, false)
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		var n int64
		for _, v := range c.col(col) {
			if v == val {
				n++
			}
		}
		parts[k] = n
	})
	var n int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		n += parts[k]
	}
	return n, nil
}

// SumSizeEq sums the Size column over rows whose key column equals val,
// chunk-parallel. With a run summary the key column is never iterated: only
// the Size spans of matching runs are read, and chunks with no matching run
// skip the Size decode entirely.
func (t *Table) SumSizeEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if runs := c.runs[col]; runs != nil && KernelsEnabled() && c.runUsable(KSumEq, int(col)) {
			t.tickKernel(KSumEq, true)
			if c.runsMatching(col, val) == 0 {
				return // no matching rows: Size never decoded
			}
			if errs[k] = c.Require(trace.ColSize); errs[k] != nil {
				return
			}
			var sum int64
			row := 0
			for _, r := range runs {
				if int32(r.Val) == val {
					for _, s := range c.Size[row : row+int(r.N)] {
						sum += s
					}
				}
				row += int(r.N)
			}
			parts[k] = sum
			return
		}
		t.tickKernel(KSumEq, false)
		if errs[k] = c.Require(set | trace.ColSize); errs[k] != nil {
			return
		}
		keys := c.col(col)
		var sum int64
		for j := 0; j < c.N; j++ {
			if keys[j] == val {
				sum += c.Size[j]
			}
		}
		parts[k] = sum
	})
	var sum int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		sum += parts[k]
	}
	return sum, nil
}

// ValueHist builds the value→row-count histogram of a key column,
// chunk-parallel. Chunks carrying a run summary contribute one increment
// per run instead of one per row.
func (t *Table) ValueHist(par int, col Col) (map[int32]int64, error) {
	parts := make([]map[int32]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make(map[int32]int64)
		if KernelsEnabled() && c.runUsable(KHist, int(col)) {
			t.tickKernel(KHist, true)
			for _, r := range c.runs[col] {
				h[int32(r.Val)] += int64(r.N)
			}
			parts[k] = h
			return
		}
		t.tickKernel(KHist, false)
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		for _, v := range c.col(col) {
			h[v]++
		}
		parts[k] = h
	})
	out := make(map[int32]int64)
	for k := range parts {
		if errs[k] != nil {
			return nil, errs[k]
		}
		for v, n := range parts[k] {
			out[v] += n
		}
	}
	return out, nil
}
