package colstore

// Run-aware scan kernels. The v2.2 trace format RLE-encodes key columns
// that arrive in runs (rank and node after the k-way merge, app and file in
// phase-structured workloads); DecodeRuns surfaces those runs without
// expanding them to rows, and the kernels below consume them directly —
// counting a 16K-row chunk by a handful of run lengths instead of 16K
// comparisons, and skipping Size decodes entirely for chunks whose runs
// rule every row out. Results are exactly equal to the row-iteration
// fallback at any parallelism.

import (
	"math"
	"math/bits"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// numKeyCols is the number of groupable key columns (ColRank..ColFile).
const numKeyCols = 4

// traceCol returns the trace-layer column set bit for a key column.
func (col Col) traceCol() trace.ColSet {
	switch col {
	case ColRank:
		return trace.ColRank
	case ColNode:
		return trace.ColNode
	case ColApp:
		return trace.ColApp
	case ColFile:
		return trace.ColFile
	}
	return 0
}

// captureRuns snapshots the RLE run summaries of the groupable key columns
// from a whole-block chunk (sel == nil: chunk rows are exactly the block's
// rows, in order). Runs whose values would fail the column's decode
// validation are dropped, so a captured summary always agrees with the
// materialized column.
func (c *Chunk) captureRuns(bd *trace.BlockData) {
	for col := ColRank; col < Col(numKeyCols); col++ {
		idx := bits.TrailingZeros64(uint64(col.traceCol()))
		runs, err := bd.DecodeRuns(idx)
		if err != nil || runs == nil {
			continue
		}
		ok := true
		lo := int64(math.MinInt32)
		if col == ColRank || col == ColNode {
			lo = 0 // ranks and nodes are non-negative int32s
		}
		for _, r := range runs {
			if r.Val < lo || r.Val > math.MaxInt32 {
				ok = false
				break
			}
		}
		if ok {
			c.runs[col] = runs
		}
	}
}

// HasRuns reports whether the chunk carries a run summary for the key
// column (observability for tests and benchmarks).
func (c *Chunk) HasRuns(col Col) bool { return c.runs[col] != nil }

// runsMatching counts the rows of c whose key column equals val using the
// run summary. Valid only when c.runs[col] != nil.
func (c *Chunk) runsMatching(col Col, val int32) int64 {
	var n int64
	for _, r := range c.runs[col] {
		if int32(r.Val) == val {
			n += int64(r.N)
		}
	}
	return n
}

// CountEq counts rows whose key column equals val, chunk-parallel. Chunks
// carrying a run summary are counted from run lengths without materializing
// (or iterating) the column.
func (t *Table) CountEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if c.runs[col] != nil {
			parts[k] = c.runsMatching(col, val)
			return
		}
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		var n int64
		for _, v := range c.col(col) {
			if v == val {
				n++
			}
		}
		parts[k] = n
	})
	var n int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		n += parts[k]
	}
	return n, nil
}

// SumSizeEq sums the Size column over rows whose key column equals val,
// chunk-parallel. With a run summary the key column is never iterated: only
// the Size spans of matching runs are read, and chunks with no matching run
// skip the Size decode entirely.
func (t *Table) SumSizeEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if runs := c.runs[col]; runs != nil {
			if c.runsMatching(col, val) == 0 {
				return // no matching rows: Size never decoded
			}
			if errs[k] = c.Require(trace.ColSize); errs[k] != nil {
				return
			}
			var sum int64
			row := 0
			for _, r := range runs {
				if int32(r.Val) == val {
					for _, s := range c.Size[row : row+int(r.N)] {
						sum += s
					}
				}
				row += int(r.N)
			}
			parts[k] = sum
			return
		}
		if errs[k] = c.Require(set | trace.ColSize); errs[k] != nil {
			return
		}
		keys := c.col(col)
		var sum int64
		for j := 0; j < c.N; j++ {
			if keys[j] == val {
				sum += c.Size[j]
			}
		}
		parts[k] = sum
	})
	var sum int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		sum += parts[k]
	}
	return sum, nil
}

// ValueHist builds the value→row-count histogram of a key column,
// chunk-parallel. Chunks carrying a run summary contribute one increment
// per run instead of one per row.
func (t *Table) ValueHist(par int, col Col) (map[int32]int64, error) {
	parts := make([]map[int32]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make(map[int32]int64)
		if runs := c.runs[col]; runs != nil {
			for _, r := range runs {
				h[int32(r.Val)] += int64(r.N)
			}
			parts[k] = h
			return
		}
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		for _, v := range c.col(col) {
			h[v]++
		}
		parts[k] = h
	})
	out := make(map[int32]int64)
	for k := range parts {
		if errs[k] != nil {
			return nil, errs[k]
		}
		for v, n := range parts[k] {
			out[v] += n
		}
	}
	return out, nil
}
