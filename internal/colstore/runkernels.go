package colstore

// Run-aware scan kernels. The v2.2 trace format RLE-encodes key columns
// that arrive in runs (rank and node after the k-way merge, app and file in
// phase-structured workloads); DecodeRuns surfaces those runs without
// expanding them to rows, and the kernels below consume them directly —
// counting a 16K-row chunk by a handful of run lengths instead of 16K
// comparisons, and skipping Size decodes entirely for chunks whose runs
// rule every row out. Results are exactly equal to the row-iteration
// fallback at any parallelism.

import (
	"math"
	"math/bits"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// numKeyCols is the number of groupable key columns (ColRank..ColFile).
const numKeyCols = 4

// Run-summary column indices. The first numKeyCols entries are the
// groupable key columns, indexed by Col; level and op follow so span-fused
// kernels can hoist per-row dispatch out to span boundaries.
const (
	runLevel = numKeyCols + iota
	runOp
	numRunCols
)

// traceCol returns the trace-layer column set bit for a key column.
func (col Col) traceCol() trace.ColSet {
	switch col {
	case ColRank:
		return trace.ColRank
	case ColNode:
		return trace.ColNode
	case ColApp:
		return trace.ColApp
	case ColFile:
		return trace.ColFile
	}
	return 0
}

// runColSet returns the trace-layer column set bit for a run column index.
func runColSet(ri int) trace.ColSet {
	switch ri {
	case runLevel:
		return trace.ColLevel
	case runOp:
		return trace.ColOp
	}
	return Col(ri).traceCol()
}

// runBounds returns the value range outside which a run column's decode
// validation (or integer conversion) would disagree with the stored value.
func runBounds(ri int) (lo, hi int64) {
	switch ri {
	case runLevel, runOp:
		return 0, math.MaxUint8 // decode truncates with uint8(v)
	case int(ColRank), int(ColNode):
		return 0, math.MaxInt32 // decode rejects out-of-range values
	}
	return math.MinInt32, math.MaxInt32
}

// captureRuns snapshots the value-run summaries of the run columns from a
// whole-block chunk (sel == nil: chunk rows are exactly the block's rows,
// in order): RLE runs directly, dict segments as coalesced code runs. Runs
// whose values would fail the column's decode validation are dropped, so a
// captured summary always agrees with the materialized column; so are
// summaries denser than one run per four rows, where run iteration stops
// paying for itself and the expanded summary would out-weigh the column.
func (c *Chunk) captureRuns(bd *trace.BlockData) {
	if c.N < 4 {
		return // no summary can pass the one-run-per-four-rows cap
	}
	for ri := 0; ri < numRunCols; ri++ {
		idx := bits.TrailingZeros64(uint64(runColSet(ri)))
		cur, err := bd.SegCursorAt(idx)
		if err != nil || cur == nil {
			continue
		}
		// Density cap pushed into the decode: a summary denser than one
		// run per four rows would be dropped below anyway, so stop
		// materializing the moment it crosses the line.
		runs, ok := cur.AppendRunsMax(nil, c.N/4)
		codec := cur.Codec()
		cur.Release()
		if !ok || len(runs) == 0 {
			continue
		}
		lo, hi := runBounds(ri)
		valid := true
		for _, r := range runs {
			if r.Val < lo || r.Val > hi {
				valid = false
				break
			}
		}
		if valid {
			c.runs[ri] = runs
			c.runCodec[ri] = codec
		}
	}
}

// captureRunsSel is captureRuns for selection-backed chunks: each run
// column's block-level value runs are re-cut against the selection's spans
// (SegCursor.CutRunsSel, the streaming fusion of trace.CutRuns into the
// segment decode), so the captured summary covers exactly the chunk's kept
// rows in kept order. The same decode-validation bounds and density cap
// apply, with the cap measured against the kept row count. It reports
// whether every stable key column ended up with a summary — the condition
// for key spans (and so the grouped analyzer passes) to fire on this
// filtered chunk.
func (c *Chunk) captureRunsSel(bd *trace.BlockData, spans []trace.SelSpan) bool {
	maxRuns := c.N / 4 // the density cap, pushed down into the cut
	if maxRuns == 0 {
		return false // fewer than 4 kept rows: no summary can pass the cap
	}
	for ri := 0; ri < numRunCols; ri++ {
		idx := bits.TrailingZeros64(uint64(runColSet(ri)))
		cur, err := bd.SegCursorAt(idx)
		if err != nil || cur == nil {
			continue
		}
		// The cut streams fused into the segment decode: the block-level
		// run list never materializes, so a column that is block-dense
		// but selection-sparse (rank after the k-way merge under a narrow
		// window, say) serves at O(kept runs) extra memory, while a
		// column still over the cap abandons the walk at maxRuns+1.
		runs, ok := cur.CutRunsSel(spans, nil, maxRuns)
		codec := cur.Codec()
		cur.Release()
		if !ok || len(runs) == 0 {
			continue
		}
		lo, hi := runBounds(ri)
		valid := true
		for _, r := range runs {
			if r.Val < lo || r.Val > hi {
				valid = false
				break
			}
		}
		if valid {
			c.runs[ri] = runs
			c.runCodec[ri] = codec
		}
	}
	for _, ri := range keyRunCols {
		if c.runs[ri] == nil {
			return false
		}
	}
	return true
}

// HasRuns reports whether the chunk carries a run summary for the key
// column (observability for tests and benchmarks).
func (c *Chunk) HasRuns(col Col) bool { return c.runs[col] != nil }

// runsMatching counts the rows of c whose key column equals val using the
// run summary. Valid only when c.runs[col] != nil.
func (c *Chunk) runsMatching(col Col, val int32) int64 {
	var n int64
	for _, r := range c.runs[col] {
		if int32(r.Val) == val {
			n += int64(r.N)
		}
	}
	return n
}

// CountEq counts rows whose key column equals val, chunk-parallel. Chunks
// carrying a run summary are counted from run lengths without materializing
// (or iterating) the column.
func (t *Table) CountEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if KernelsEnabled() && c.runUsable(KCountEq, int(col)) {
			t.tickKernel(KCountEq, true)
			parts[k] = c.runsMatching(col, val)
			return
		}
		t.tickKernel(KCountEq, false)
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		var n int64
		for _, v := range c.col(col) {
			if v == val {
				n++
			}
		}
		parts[k] = n
	})
	var n int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		n += parts[k]
	}
	return n, nil
}

// SumSizeEq sums the Size column over rows whose key column equals val,
// chunk-parallel. With a run summary the key column is never iterated: only
// the Size spans of matching runs are read, and chunks with no matching run
// skip the Size decode entirely.
func (t *Table) SumSizeEq(par int, col Col, val int32) (int64, error) {
	parts := make([]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if runs := c.runs[col]; runs != nil && KernelsEnabled() && c.runUsable(KSumEq, int(col)) {
			t.tickKernel(KSumEq, true)
			if c.runsMatching(col, val) == 0 {
				return // no matching rows: Size never decoded
			}
			if errs[k] = c.Require(trace.ColSize); errs[k] != nil {
				return
			}
			var sum int64
			row := 0
			for _, r := range runs {
				if int32(r.Val) == val {
					for _, s := range c.Size[row : row+int(r.N)] {
						sum += s
					}
				}
				row += int(r.N)
			}
			parts[k] = sum
			return
		}
		t.tickKernel(KSumEq, false)
		if errs[k] = c.Require(set | trace.ColSize); errs[k] != nil {
			return
		}
		keys := c.col(col)
		var sum int64
		for j := 0; j < c.N; j++ {
			if keys[j] == val {
				sum += c.Size[j]
			}
		}
		parts[k] = sum
	})
	var sum int64
	for k := range parts {
		if errs[k] != nil {
			return 0, errs[k]
		}
		sum += parts[k]
	}
	return sum, nil
}

// ValueHist builds the value→row-count histogram of a key column,
// chunk-parallel. Chunks carrying a run summary contribute one increment
// per run instead of one per row.
func (t *Table) ValueHist(par int, col Col) (map[int32]int64, error) {
	parts := make([]map[int32]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	set := col.traceCol()
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make(map[int32]int64)
		if KernelsEnabled() && c.runUsable(KHist, int(col)) {
			t.tickKernel(KHist, true)
			for _, r := range c.runs[col] {
				h[int32(r.Val)] += int64(r.N)
			}
			parts[k] = h
			return
		}
		t.tickKernel(KHist, false)
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		for _, v := range c.col(col) {
			h[v]++
		}
		parts[k] = h
	})
	out := make(map[int32]int64)
	for k := range parts {
		if errs[k] != nil {
			return nil, errs[k]
		}
		for v, n := range parts[k] {
			out[v] += n
		}
	}
	return out, nil
}
