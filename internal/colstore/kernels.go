package colstore

// The compressed-domain kernel registry. Every aggregation the analyzer
// runs is expressed as a kernel request keyed by (operation, segment
// codec): a registry entry means the operation can be answered straight
// from the encoded segment — predicate evaluation on dictionary codes or
// RLE runs, group-by and counting on run summaries, min/max from FOR
// headers, span-fused scans over merged run structure — and a miss falls
// back to materializing the column and iterating rows. Both paths produce
// byte-identical results (the equivalence suite runs the full codec matrix
// with kernels force-disabled); per-kernel served/fallback counters in
// ScanStats make the split observable end-to-end, from `-v` CLI output to
// the vanid /metrics endpoint.

import (
	"errors"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"vani/internal/parallel"
	"vani/internal/trace"
)

var errNotValueCol = errors.New("colstore: ColMinMax requires a single int64 value column")

// KernelOp names a compressed-domain kernel operation. Served/fallback
// counters in ScanStats are indexed by it.
type KernelOp int

// The kernel operations.
const (
	// KPredicate evaluates the scan plan's pushed-down row predicate in the
	// compressed domain: translated into the code domain once per block for
	// dict segments, per run for RLE segments.
	KPredicate KernelOp = iota
	// KCountEq counts rows equal to a key from run summaries.
	KCountEq
	// KSumEq sums a value column over key-matching runs without reading the
	// key column per row.
	KSumEq
	// KHist builds value histograms with one increment per run.
	KHist
	// KGroupBy groups rows by key from run summaries, one range append per
	// run instead of one map operation per row.
	KGroupBy
	// KMinMax answers column min/max from FOR segment headers without
	// unpacking the segment.
	KMinMax
	// KSpanScan fuses the six run-summarized columns into constant-key spans
	// so analyzer passes hoist per-row map lookups out to span boundaries.
	KSpanScan
	// KKeySpan fuses the five STABLE key columns (level, rank, node, app,
	// file) into spans, dispatching per-row on op only — the grouped span
	// kernel that fires on real traces where op alternates every event.
	KKeySpan
	// KGroupAgg is grouped aggregation on dictionary codes: the code
	// unifier built from dict segment headers plus the dense grouped
	// kernels (GroupValueHist, GroupSumSize, GroupCountEq).
	KGroupAgg
	// KTimelineAdd is run-aware timeline accumulation: spans of rows bucket
	// into stats.Timeline bins in O(bins-crossed) instead of O(rows), by
	// segmenting the span's time-sorted rows at bin boundaries.
	KTimelineAdd
	// KHistAdd is run-aware size-histogram accumulation: a constant-size
	// run of rows adds count×size to its bucket in O(1).
	KHistAdd
	// NumKernelOps bounds the per-kernel counter arrays.
	NumKernelOps
)

var kernelOpNames = [NumKernelOps]string{
	"predicate", "counteq", "sumeq", "hist", "groupby", "minmax", "spanscan",
	"keyspan", "groupagg", "tladd", "histadd",
}

// String returns the kernel operation's short name.
func (op KernelOp) String() string {
	if op < 0 || op >= NumKernelOps {
		return "unknown"
	}
	return kernelOpNames[op]
}

// kernelCaps is the registry: kernelCaps[op][codec] reports whether the
// kernel operation can be served from segments of that codec. Populated in
// init via RegisterKernel.
var kernelCaps [NumKernelOps][trace.NumSegCodecs]bool

// registerKernel records that op can run in the compressed domain over
// segments of the given codec.
func registerKernel(op KernelOp, codec uint8) { kernelCaps[op][codec] = true }

// KernelServes reports whether the registry can serve op from segments of
// the given codec (observability for tests).
func KernelServes(op KernelOp, codec uint8) bool {
	return op >= 0 && op < NumKernelOps && int(codec) < trace.NumSegCodecs &&
		kernelCaps[op][codec]
}

func init() {
	// Run-structured codecs serve every run- and code-domain kernel.
	for _, codec := range []uint8{trace.SegCodecRLE, trace.SegCodecDict} {
		registerKernel(KPredicate, codec)
		registerKernel(KCountEq, codec)
		registerKernel(KSumEq, codec)
		registerKernel(KHist, codec)
		registerKernel(KGroupBy, codec)
		registerKernel(KSpanScan, codec)
		registerKernel(KKeySpan, codec)
		registerKernel(KGroupAgg, codec)
	}
	// FOR segments coalesce into value runs too (SegCursor.AppendRuns
	// unpacks base+offset adjacency), so they serve the run- and
	// code-domain kernels — all but KPredicate, whose selection paths
	// dispatch on dict/RLE structure directly (Runs/ForEachCode) and
	// never consult a captured run summary.
	for _, op := range []KernelOp{KCountEq, KSumEq, KHist, KGroupBy, KSpanScan, KKeySpan, KGroupAgg} {
		registerKernel(op, trace.SegCodecFOR)
	}
	// The run-aware distribution accumulators batch over any span structure
	// the run-structured codecs produced (the Start/End values themselves
	// come from materialized columns — their segments are delta chains).
	for _, codec := range []uint8{trace.SegCodecRLE, trace.SegCodecDict, trace.SegCodecFOR} {
		registerKernel(KTimelineAdd, codec)
		registerKernel(KHistAdd, codec)
	}
	// FOR headers answer range queries without unpacking.
	registerKernel(KMinMax, trace.SegCodecFOR)
	kernelsOff.Store(false)
}

// kernelsOff gates every compressed-domain kernel (inverted so the zero
// value means enabled). The equivalence suite and benchmarks flip it to
// prove the fallback path is byte-identical and to measure the win.
var kernelsOff atomic.Bool

// SetKernelsEnabled turns compressed-domain kernels on or off globally.
// Off, every kernel request falls back to materialized row iteration —
// results must be byte-identical either way.
func SetKernelsEnabled(on bool) { kernelsOff.Store(!on) }

// KernelsEnabled reports whether compressed-domain kernels are on.
func KernelsEnabled() bool { return !kernelsOff.Load() }

// tickKernel records one served or fallback kernel request against the
// table's scan stats (a no-op for eagerly built tables, which have none).
func (t *Table) tickKernel(op KernelOp, served bool) {
	if t.stats != nil {
		t.stats.tickKernel(op, served)
	}
}

// TickAccumKernels records one chunk pass's run-aware distribution
// accumulator requests: served when span structure let the pass batch its
// timeline and size-histogram accumulation (KTimelineAdd/KHistAdd),
// fallback when it bucketed per row. The analyzer's pass-2 scans call this
// once per chunk so the batched/per-row split is observable end to end.
func (t *Table) TickAccumKernels(served bool) {
	t.tickKernel(KTimelineAdd, served)
	t.tickKernel(KHistAdd, served)
}

// runUsable reports whether the chunk has a run summary for run column ri
// that the registry can serve op from. A single run covering the whole
// chunk — a constant column, which the cost model stores as width-0 FOR —
// serves any run kernel regardless of which codec produced it.
func (c *Chunk) runUsable(op KernelOp, ri int) bool {
	runs := c.runs[ri]
	if runs == nil {
		return false
	}
	if kernelCaps[op][c.runCodec[ri]] {
		return true
	}
	return len(runs) == 1 && int(runs[0].N) == c.N
}

// Span is a maximal run of chunk rows over which every span column —
// level, op, rank, node, app and file — is constant. Lo is inclusive, Hi
// exclusive, both chunk-relative.
type Span struct {
	Lo, Hi     int
	Level, Op  uint8
	Rank, Node int32
	App, File  int32
}

// spans merges the chunk's six run summaries into constant-key spans,
// appending to dst. It reports false (serving nothing) unless every span
// column carries a registry-served run summary.
func (c *Chunk) spans(dst []Span) ([]Span, bool) {
	for ri := 0; ri < numRunCols; ri++ {
		if !c.runUsable(KSpanScan, ri) {
			return dst, false
		}
	}
	var idx, rem [numRunCols]int
	for ri := range rem {
		rem[ri] = int(c.runs[ri][0].N)
	}
	row := 0
	for row < c.N {
		n := rem[0]
		for ri := 1; ri < numRunCols; ri++ {
			if rem[ri] < n {
				n = rem[ri]
			}
		}
		dst = append(dst, Span{
			Lo:    row,
			Hi:    row + n,
			Level: uint8(c.runs[runLevel][idx[runLevel]].Val),
			Op:    uint8(c.runs[runOp][idx[runOp]].Val),
			Rank:  int32(c.runs[ColRank][idx[ColRank]].Val),
			Node:  int32(c.runs[ColNode][idx[ColNode]].Val),
			App:   int32(c.runs[ColApp][idx[ColApp]].Val),
			File:  int32(c.runs[ColFile][idx[ColFile]].Val),
		})
		row += n
		for ri := 0; ri < numRunCols; ri++ {
			if rem[ri] -= n; rem[ri] == 0 {
				if idx[ri]++; idx[ri] < len(c.runs[ri]) {
					rem[ri] = int(c.runs[ri][idx[ri]].N)
				} else if row < c.N {
					return dst, false // summaries must tile the chunk exactly
				}
			}
		}
	}
	return dst, true
}

// ChunkSpans is the analyzer's span-scan kernel request for chunk k: the
// chunk's constant-key spans appended to dst, or ok == false when any span
// column lacks a served run summary (the caller iterates rows instead).
// Either way the request is counted in the scan stats.
func (t *Table) ChunkSpans(k int, dst []Span) ([]Span, bool) {
	if !KernelsEnabled() {
		t.tickKernel(KSpanScan, false)
		return dst, false
	}
	dst, ok := t.chunks[k].spans(dst)
	t.tickKernel(KSpanScan, ok)
	return dst, ok
}

// emptySel is the canonical zero-row selection: non-nil (so it is distinct
// from "every row") and shared, so total-drop blocks allocate nothing.
var emptySel = []int32{}

// synthCol carries a filter column materialized straight from the run
// summary during direct selection: the selected rows' values are already
// known from the runs the predicate was evaluated on, so the column is
// filled at exact size without ever decoding its segment. At most one of
// the typed slices is set, named by set. The synthesized values reproduce
// the decoder's conversions exactly — uint8 truncation for level and op,
// and the rank bounds the predicate already validated.
type synthCol struct {
	set   trace.ColSet
	level []uint8
	op    []uint8
	rank  []int32
}

// init sizes the typed slice for the dimension at exact final capacity.
func (s *synthCol) init(set trace.ColSet, cnt int) {
	s.set = set
	switch set {
	case trace.ColLevel:
		s.level = make([]uint8, 0, cnt)
	case trace.ColOp:
		s.op = make([]uint8, 0, cnt)
	case trace.ColRank:
		s.rank = make([]int32, 0, cnt)
	}
}

// appendN appends n copies of v, converted as the decoder would.
func (s *synthCol) appendN(v int64, n int) {
	switch s.set {
	case trace.ColLevel:
		for i := 0; i < n; i++ {
			s.level = append(s.level, uint8(v))
		}
	case trace.ColOp:
		for i := 0; i < n; i++ {
			s.op = append(s.op, uint8(v))
		}
	case trace.ColRank:
		for i := 0; i < n; i++ {
			s.rank = append(s.rank, int32(v))
		}
	}
}

// install hands the synthesized column to the chunk.
func (s *synthCol) install(ck *Chunk) {
	switch s.set {
	case trace.ColLevel:
		ck.Level = s.level
	case trace.ColOp:
		ck.Op = s.op
	case trace.ColRank:
		ck.Rank = s.rank
	}
}

// compressedSel builds the row selection directly from a single dimension's
// compressed segment, when the filter constrains exactly one dimension and
// that dimension's segment has run or code structure. Run lengths give the
// exact match count before any row is touched, so the selection vector is
// allocated once at its final size — something the materialized path cannot
// do without a counting pre-pass — no keep bitmap exists at all, and the
// filter column itself is synthesized from the runs (syn), so its segment
// is never decoded. all == true means every row passed (the caller keeps
// the whole block); ok == false means the fast path does not apply and the
// caller must fall back to compressedKeep / materialized selection.
//
// need is the matcher's constrained-dimension set for this block — the
// caller passes Matcher.NeedColsBlock, so a window the block's index entry
// proves wholly containing has already dropped out and a window+rank
// filter lands here as a pure rank filter on interior blocks.
func compressedSel(m *trace.Matcher, need trace.ColSet, bd *trace.BlockData) (sel []int32, syn synthCol, all, ok bool) {
	if !KernelsEnabled() || (need != trace.ColLevel && need != trace.ColOp && need != trace.ColRank) {
		return nil, syn, false, false
	}
	for _, d := range predDims {
		if need != d.set {
			continue
		}
		cur, err := bd.SegCursorAt(bits.TrailingZeros64(uint64(d.set)))
		if err != nil || cur == nil {
			return nil, syn, false, false
		}
		n := bd.Count()
		if v, cok := cur.ConstVal(); cok {
			cur.Release()
			pass, valid := d.accept(m, v)
			if !valid {
				return nil, syn, false, false
			}
			if pass {
				return nil, syn, true, true
			}
			return emptySel, syn, false, true
		}
		if !kernelCaps[KPredicate][cur.Codec()] {
			cur.Release()
			return nil, syn, false, false
		}
		if nd := cur.NumCodes(); nd > 0 {
			// Dict: translate the predicate into the code domain once, count
			// matches with one code stream, fill with a second.
			acceptCode := make([]bool, nd)
			for code := 0; code < nd; code++ {
				pass, valid := d.accept(m, cur.DictVal(uint32(code)))
				if !valid {
					cur.Release()
					return nil, syn, false, false
				}
				acceptCode[code] = pass
			}
			cnt := 0
			cur.ForEachCode(func(code uint32) bool {
				if acceptCode[code] {
					cnt++
				}
				return true
			})
			switch cnt {
			case n:
				cur.Release()
				return nil, syn, true, true
			case 0:
				cur.Release()
				return emptySel, syn, false, true
			}
			sel = make([]int32, 0, cnt)
			syn.init(need, cnt)
			row := int32(0)
			cur.ForEachCode(func(code uint32) bool {
				if acceptCode[code] {
					sel = append(sel, row)
					syn.appendN(cur.DictVal(code), 1)
				}
				row++
				return true
			})
			cur.Release()
			return sel, syn, false, true
		}
		// RLE: one predicate evaluation per run; pass one counts, pass two
		// fills. The runs must tile the block exactly (construction validates
		// this; keep the guard so a codec added later without run totals
		// can't silently serve).
		runs := cur.Runs()
		cnt, row := 0, 0
		for _, r := range runs {
			pass, valid := d.accept(m, r.Val)
			if !valid {
				cur.Release()
				return nil, syn, false, false
			}
			if pass {
				cnt += int(r.N)
			}
			row += int(r.N)
		}
		if row != n {
			cur.Release()
			return nil, syn, false, false
		}
		switch cnt {
		case n:
			cur.Release()
			return nil, syn, true, true
		case 0:
			cur.Release()
			return emptySel, syn, false, true
		}
		sel = make([]int32, 0, cnt)
		syn.init(need, cnt)
		row = 0
		for _, r := range runs {
			if pass, _ := d.accept(m, r.Val); pass {
				for j := row; j < row+int(r.N); j++ {
					sel = append(sel, int32(j))
				}
				syn.appendN(r.Val, int(r.N))
			}
			row += int(r.N)
		}
		cur.Release()
		return sel, syn, false, true
	}
	return nil, syn, false, false
}

// passRun is one maximal segment of block rows sharing a predicate
// outcome for a single dimension — a dimension's run summary with the
// values already evaluated away, coalesced on the outcome so the
// intersection below walks as few segments as possible.
type passRun struct {
	n    int32
	pass bool
}

// appendPassRuns evaluates one dimension's predicate over its encoded
// segment and appends outcome runs covering all n block rows: one run for
// a constant segment, predicate-per-run for RLE, predicate-per-code plus a
// code stream for dict. ok == false means the segment has no usable
// structure (or a stored value would fail decode validation) and the
// multi-dimension fast path cannot serve this block.
func appendPassRuns(m *trace.Matcher, d *predDim, cur *trace.SegCursor, n int, dst []passRun) ([]passRun, bool) {
	put := func(pass bool, cnt int32) []passRun {
		if len(dst) > 0 && dst[len(dst)-1].pass == pass {
			dst[len(dst)-1].n += cnt
			return dst
		}
		return append(dst, passRun{cnt, pass})
	}
	if v, cok := cur.ConstVal(); cok {
		pass, valid := d.accept(m, v)
		if !valid {
			return dst, false
		}
		return put(pass, int32(n)), true
	}
	if !kernelCaps[KPredicate][cur.Codec()] {
		return dst, false
	}
	if nd := cur.NumCodes(); nd > 0 {
		acceptCode := make([]bool, nd)
		for code := 0; code < nd; code++ {
			pass, valid := d.accept(m, cur.DictVal(uint32(code)))
			if !valid {
				return dst, false
			}
			acceptCode[code] = pass
		}
		cur.ForEachCode(func(code uint32) bool {
			dst = put(acceptCode[code], 1)
			return true
		})
		return dst, true
	}
	row := 0
	for _, r := range cur.Runs() {
		pass, valid := d.accept(m, r.Val)
		if !valid {
			return dst, false
		}
		dst = put(pass, r.N)
		row += int(r.N)
	}
	return dst, row == n
}

// compressedSelMulti is the multi-dimension direct-selection path: when a
// filter constrains two or more of level/op/rank (and nothing else — a
// Start bound needs rows), each dimension's run summary evaluates into
// outcome runs and the runs intersect in lockstep, emitting the selection
// vector directly at exact final size — no keep bitmap, no residual row
// pass. A first intersection walk counts (and short-circuits whole-pass
// and whole-drop blocks without allocating), a second fills. The fill walk
// already visits the selection one contiguous pass segment at a time, so
// it emits that run structure alongside the vector (spans, coalesced) —
// the selection's spans feed the run re-cut instead of being rediscovered
// from the dense indices. eligible reports whether the filter shape
// qualifies at all (for the run-isect counters); ok whether every
// dimension was run-representable. need is the block-reduced constrained
// set (Matcher.NeedColsBlock).
func compressedSelMulti(m *trace.Matcher, need trace.ColSet, bd *trace.BlockData) (sel []int32, spans []trace.SelSpan, all, ok, eligible bool) {
	const dims3 = trace.ColLevel | trace.ColOp | trace.ColRank
	if !KernelsEnabled() || need&^dims3 != 0 || bits.OnesCount64(uint64(need)) < 2 {
		return nil, nil, false, false, false
	}
	n := bd.Count()
	var lists [3][]passRun
	nd := 0
	for i := range predDims {
		d := &predDims[i]
		if need&d.set == 0 {
			continue
		}
		cur, err := bd.SegCursorAt(bits.TrailingZeros64(uint64(d.set)))
		if err != nil || cur == nil {
			return nil, nil, false, false, true
		}
		pr, prOK := appendPassRuns(m, d, cur, n, nil)
		cur.Release()
		if !prOK {
			return nil, nil, false, false, true
		}
		lists[nd] = pr
		nd++
	}
	// Pass one: count matches by intersecting outcome runs in lockstep.
	var idx, rem [3]int
	for i := 0; i < nd; i++ {
		rem[i] = int(lists[i][0].n)
	}
	cnt := 0
	for row := 0; row < n; {
		seg := rem[0]
		pass := lists[0][idx[0]].pass
		for i := 1; i < nd; i++ {
			if rem[i] < seg {
				seg = rem[i]
			}
			pass = pass && lists[i][idx[i]].pass
		}
		if pass {
			cnt += seg
		}
		row += seg
		for i := 0; i < nd; i++ {
			if rem[i] -= seg; rem[i] == 0 && idx[i]+1 < len(lists[i]) {
				idx[i]++
				rem[i] = int(lists[i][idx[i]].n)
			}
		}
	}
	switch cnt {
	case n:
		return nil, nil, true, true, true
	case 0:
		return emptySel, nil, false, true, true
	}
	// Pass two: fill the selection at exact size, emitting its run
	// structure (contiguous kept spans, coalesced across dimension
	// boundaries) as it goes.
	sel = make([]int32, 0, cnt)
	idx, rem = [3]int{}, [3]int{}
	for i := 0; i < nd; i++ {
		rem[i] = int(lists[i][0].n)
	}
	for row := 0; row < n; {
		seg := rem[0]
		pass := lists[0][idx[0]].pass
		for i := 1; i < nd; i++ {
			if rem[i] < seg {
				seg = rem[i]
			}
			pass = pass && lists[i][idx[i]].pass
		}
		if pass {
			for j := row; j < row+seg; j++ {
				sel = append(sel, int32(j))
			}
			if ns := len(spans); ns > 0 && spans[ns-1].Lo+spans[ns-1].N == int32(row) {
				spans[ns-1].N += int32(seg)
			} else {
				spans = append(spans, trace.SelSpan{Lo: int32(row), N: int32(seg)})
			}
		}
		row += seg
		for i := 0; i < nd; i++ {
			if rem[i] -= seg; rem[i] == 0 && idx[i]+1 < len(lists[i]) {
				idx[i]++
				rem[i] = int(lists[i][idx[i]].n)
			}
		}
	}
	return sel, spans, false, true, true
}

// compressedKeep evaluates the matcher's per-dimension predicates in the
// compressed domain: for each constrained dimension whose segment the
// registry serves, a keep bitmap is narrowed — dict segments translate the
// predicate into the code domain once and stream codes, RLE segments test
// once per run — and the dimension leaves the residual set. Dimensions
// whose segments are unserved, or whose stored values would fail decode
// validation, stay residual so materialization reproduces the decode
// error exactly. keep == nil with served dimensions means every row passed
// them. Start never evaluates compressed (its segment is a delta chain) —
// though a block whose index entry proves the window containing arrives
// with ColStart already dropped from need (Matcher.NeedColsBlock), the
// one case where the window costs nothing at all.
func compressedKeep(m *trace.Matcher, need trace.ColSet, bd *trace.BlockData) (kb *keepBuf, residual trace.ColSet, served bool) {
	residual = need
	if !KernelsEnabled() || residual&^trace.ColStart == 0 {
		return nil, residual, false
	}
	n := bd.Count()
	var keep []bool
	for _, d := range predDims {
		if residual&d.set == 0 {
			continue
		}
		cur, err := bd.SegCursorAt(bits.TrailingZeros64(uint64(d.set)))
		if err != nil || cur == nil {
			continue
		}
		if v, ok := cur.ConstVal(); ok {
			// Constant column: one predicate evaluation covers the block.
			cur.Release()
			pass, valid := d.accept(m, v)
			if !valid {
				continue
			}
			if !pass {
				if kb == nil {
					kb = newKeep(n)
					keep = kb.b
				}
				for x := range keep {
					keep[x] = false
				}
			}
			residual &^= d.set
			served = true
			continue
		}
		if !kernelCaps[KPredicate][cur.Codec()] {
			cur.Release()
			continue
		}
		if nd := cur.NumCodes(); nd > 0 {
			// Dict: translate the predicate into the code domain once.
			acceptCode := make([]bool, nd)
			valid, all := true, true
			for code := 0; code < nd; code++ {
				pass, ok := d.accept(m, cur.DictVal(uint32(code)))
				if !ok {
					valid = false
					break
				}
				acceptCode[code] = pass
				all = all && pass
			}
			if !valid {
				cur.Release()
				continue
			}
			if !all {
				if kb == nil {
					kb = newKeep(n)
					keep = kb.b
				}
				row := 0
				cur.ForEachCode(func(code uint32) bool {
					if !acceptCode[code] {
						keep[row] = false
					}
					row++
					return true
				})
			}
			cur.Release()
			residual &^= d.set
			served = true
			continue
		}
		// RLE: one predicate evaluation per run. The runs must tile the
		// block exactly (construction validates this; keep the guard so a
		// codec added later without run totals can't silently serve).
		valid := true
		row := 0
		for _, r := range cur.Runs() {
			pass, ok := d.accept(m, r.Val)
			if !ok {
				valid = false
				break
			}
			if !pass {
				if kb == nil {
					kb = newKeep(n)
					keep = kb.b
				}
				for x := row; x < row+int(r.N); x++ {
					keep[x] = false
				}
			}
			row += int(r.N)
		}
		cur.Release()
		if valid && row == n {
			residual &^= d.set
			served = true
		}
	}
	return kb, residual, served
}

// predDim is one filter dimension the compressed predicate paths can
// evaluate against encoded segments.
type predDim struct {
	set    trace.ColSet
	accept func(m *trace.Matcher, v int64) (pass, valid bool)
}

// predDims are the filter dimensions compressedKeep can evaluate against
// encoded segments, hoisted to package level so evaluation allocates no
// closures. Start never appears: its segment is a delta chain.
var predDims = [...]predDim{
	{trace.ColLevel, func(m *trace.Matcher, v int64) (bool, bool) { return m.AcceptLevel(uint8(v)), true }},
	{trace.ColOp, func(m *trace.Matcher, v int64) (bool, bool) { return m.AcceptOp(uint8(v)), true }},
	{trace.ColRank, func(m *trace.Matcher, v int64) (bool, bool) {
		if v < 0 || v > math.MaxInt32 {
			return false, false // decode would reject; let it
		}
		return m.AcceptRank(int32(v)), true
	}},
}

// keepBuf boxes a pooled keep bitmap: a bitmap's life ends at row
// selection, and the box travels with it, so the scan's steady state
// allocates nothing per block.
type keepBuf struct{ b []bool }

// keepPool recycles keep bitmaps (with their boxes) between blocks.
var keepPool = sync.Pool{New: func() any { return new(keepBuf) }}

// newKeep returns an all-true keep bitmap for n rows, reusing pooled
// backing when it fits.
func newKeep(n int) *keepBuf {
	kb := keepPool.Get().(*keepBuf)
	if cap(kb.b) < n {
		kb.b = make([]bool, n)
	}
	kb.b = kb.b[:n]
	for i := range kb.b {
		kb.b[i] = true
	}
	return kb
}

// releaseKeep recycles a bitmap returned by compressedKeep (nil is fine).
func releaseKeep(kb *keepBuf) {
	if kb != nil {
		keepPool.Put(kb)
	}
}

// selectRowsResidual applies the residual row predicate after compressed
// predicate dimensions already narrowed keep: only the dimensions still in
// residual are re-evaluated on materialized columns. With keep == nil every
// row passed the served dimensions.
func selectRowsResidual(m *trace.Matcher, cols *trace.Columns, keep []bool, residual trace.ColSet) []int32 {
	sel := make([]int32, 0, cols.N)
	for j := 0; j < cols.N; j++ {
		if keep != nil && !keep[j] {
			continue
		}
		if residual&trace.ColStart != 0 && !m.AcceptStart(cols.Start[j]) {
			continue
		}
		if residual&trace.ColRank != 0 && !m.AcceptRank(cols.Rank[j]) {
			continue
		}
		if residual&trace.ColLevel != 0 && !m.AcceptLevel(cols.Level[j]) {
			continue
		}
		if residual&trace.ColOp != 0 && !m.AcceptOp(cols.Op[j]) {
			continue
		}
		sel = append(sel, int32(j))
	}
	return sel
}

// forStats answers min/max over a chunk's int64 value column straight from
// its FOR segment header, when the chunk still holds its block payload,
// keeps every block row, and the segment is FOR-coded.
func (c *Chunk) forStats(colIdx int) (min, max int64, ok bool) {
	l := c.lazy
	if l == nil {
		return 0, 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bd == nil || l.sel != nil {
		return 0, 0, false
	}
	cur, err := l.bd.SegCursorAt(colIdx)
	if err != nil || cur == nil || !kernelCaps[KMinMax][cur.Codec()] {
		cur.Release()
		return 0, 0, false
	}
	mn, mx, _, ok2 := cur.FORStats()
	cur.Release()
	if !ok2 {
		return 0, 0, false
	}
	return mn, mx, true
}

// ColMinMax returns the min and max of an int64 value column (ColOffset or
// ColSize of the trace column set), chunk-parallel. Chunks whose segment is
// FOR-coded answer from the segment header without unpacking; others
// materialize the column and scan. An empty table returns (0, 0).
func (t *Table) ColMinMax(par int, set trace.ColSet) (min, max int64, err error) {
	colIdx := bits.TrailingZeros64(uint64(set))
	type mm struct {
		min, max int64
		ok       bool
	}
	parts := make([]mm, len(t.chunks))
	errs := make([]error, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		if c.N == 0 {
			return
		}
		if KernelsEnabled() {
			if mn, mx, ok := c.forStats(colIdx); ok {
				t.tickKernel(KMinMax, true)
				parts[k] = mm{mn, mx, true}
				return
			}
		}
		t.tickKernel(KMinMax, false)
		if errs[k] = c.Require(set); errs[k] != nil {
			return
		}
		var vals []int64
		switch set {
		case trace.ColOffset:
			vals = c.Offset
		case trace.ColSize:
			vals = c.Size
		case trace.ColStart:
			vals = c.Start
		case trace.ColEnd:
			vals = c.End
		default:
			errs[k] = errNotValueCol
			return
		}
		mn, mx := vals[0], vals[0]
		for _, v := range vals[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		parts[k] = mm{mn, mx, true}
	})
	first := true
	for k := range parts {
		if errs[k] != nil {
			return 0, 0, errs[k]
		}
		if !parts[k].ok {
			continue
		}
		if first {
			min, max, first = parts[k].min, parts[k].max, false
			continue
		}
		if parts[k].min < min {
			min = parts[k].min
		}
		if parts[k].max > max {
			max = parts[k].max
		}
	}
	return min, max, nil
}
