package colstore

// The scan planner's middle layer: an analysis declares the columns its
// kernels touch and the predicates it can push (ScanSpec); FromBlocksSpec
// drives that plan down into the VANITRC2 block index — skipping whole
// blocks the footer statistics rule out, decoding only the column segments
// the plan names, and applying the residual row predicate exactly — and
// builds a table whose chunks materialize further columns lazily, the first
// time a kernel asks. ScanStats counts what the plan saved so pruning
// effectiveness is observable, not inferred.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// ScanSpec is the scan plan an analysis declares before touching data: the
// columns its kernels will read up front and the predicates the reader may
// push down. Cols == 0 defers every column — chunks hold only the block's
// undecoded payload until a kernel Requires a column. The zero value is a
// fully lazy, unfiltered scan.
type ScanSpec struct {
	// Cols are the columns to materialize eagerly during the scan (the
	// filter's own columns are always decoded). 0 = decode on demand.
	Cols trace.ColSet
	// Filter is pushed down to the block index (pruning) and applied
	// per-row afterwards, so the resulting table is row-identical to
	// filtering a full decode in memory.
	Filter trace.Filter
}

// ScanStats counts what a planned scan actually did. Counters are atomic:
// one ScanStats is shared by the parallel scan workers and by later lazy
// materializations of the resulting table's chunks.
type ScanStats struct {
	BlocksTotal  atomic.Int64 // blocks in the log
	BlocksPruned atomic.Int64 // blocks skipped via footer statistics
	RowsTotal    atomic.Int64 // rows in blocks that were read
	RowsKept     atomic.Int64 // rows surviving the residual filter
	PayloadBytes atomic.Int64 // unwrapped payload bytes of blocks read
	DecodedBytes atomic.Int64 // payload bytes actually varint-decoded

	// Segs counts the v2.2 column segments decoded, by segment codec id —
	// the codec mix the cost model actually chose on this log. All zero for
	// v1/v2.0/v2.1 input.
	Segs [trace.NumSegCodecs]atomic.Int64

	// KernelServed and KernelFallback count, per kernel operation, the
	// requests a compressed-domain kernel answered from encoded segments vs
	// fell back to materialized row iteration — the observable split between
	// the two execution paths.
	KernelServed   [NumKernelOps]atomic.Int64
	KernelFallback [NumKernelOps]atomic.Int64

	// RunIsectServed and RunIsectFallback count blocks where a
	// multi-dimension filter was eligible for run-intersection selection
	// (every constrained dimension is level/op/rank) and the intersection
	// served vs fell back because some dimension lacked run structure.
	RunIsectServed   atomic.Int64
	RunIsectFallback atomic.Int64

	// GroupFilteredServed and GroupFilteredFallback count selection-backed
	// chunks whose re-cut run summaries covered every stable key column —
	// grouped execution fires on the filtered chunk — vs filtered chunks
	// whose re-cut came up short (density cap, structureless segments) and
	// stay on the row path.
	GroupFilteredServed   atomic.Int64
	GroupFilteredFallback atomic.Int64
}

// tickKernel records one kernel request as served or fallback. Nil-safe.
func (s *ScanStats) tickKernel(op KernelOp, served bool) {
	if s == nil {
		return
	}
	if served {
		s.KernelServed[op].Add(1)
	} else {
		s.KernelFallback[op].Add(1)
	}
}

// ScanCounters is a plain-value snapshot of ScanStats, suitable for
// embedding in reports and timings.
type ScanCounters struct {
	BlocksTotal  int64
	BlocksPruned int64
	RowsTotal    int64
	RowsKept     int64
	PayloadBytes int64
	DecodedBytes int64

	// Decoded v2.2 column segments by codec (the log's codec mix).
	SegRaw  int64
	SegRLE  int64
	SegDict int64
	SegFOR  int64

	// Per-kernel served/fallback request counts, indexed by KernelOp, plus
	// their totals.
	KernelServed    [NumKernelOps]int64
	KernelFallback  [NumKernelOps]int64
	KernelsServed   int64
	KernelsFallback int64

	// Grouped-execution split: requests the key-span and group-aggregation
	// kernels answered from encoded segments vs the map-keyed fallback.
	GroupServed   int64
	GroupFallback int64

	// Multi-dimension run-intersection selection: blocks served vs eligible
	// blocks that fell back to the keep-bitmap path.
	RunIsectServed   int64
	RunIsectFallback int64

	// Selection-backed chunks where re-cut run summaries let grouped
	// execution fire vs filtered chunks left on the row path.
	GroupFilteredServed   int64
	GroupFilteredFallback int64

	// Run-aware distribution accumulators: chunk passes whose timeline and
	// size-histogram accumulation batched over span structure vs passes
	// that bucketed per row (KernelServed/Fallback for KTimelineAdd and
	// KHistAdd, summed).
	TLServed   int64
	TLFallback int64
}

// Snapshot reads every counter.
func (s *ScanStats) Snapshot() ScanCounters {
	c := ScanCounters{
		BlocksTotal:  s.BlocksTotal.Load(),
		BlocksPruned: s.BlocksPruned.Load(),
		RowsTotal:    s.RowsTotal.Load(),
		RowsKept:     s.RowsKept.Load(),
		PayloadBytes: s.PayloadBytes.Load(),
		DecodedBytes: s.DecodedBytes.Load(),
		SegRaw:       s.Segs[0].Load(),
		SegRLE:       s.Segs[1].Load(),
		SegDict:      s.Segs[2].Load(),
		SegFOR:       s.Segs[3].Load(),
	}
	for op := KernelOp(0); op < NumKernelOps; op++ {
		c.KernelServed[op] = s.KernelServed[op].Load()
		c.KernelFallback[op] = s.KernelFallback[op].Load()
		c.KernelsServed += c.KernelServed[op]
		c.KernelsFallback += c.KernelFallback[op]
	}
	c.GroupServed = c.KernelServed[KKeySpan] + c.KernelServed[KGroupAgg]
	c.GroupFallback = c.KernelFallback[KKeySpan] + c.KernelFallback[KGroupAgg]
	c.RunIsectServed = s.RunIsectServed.Load()
	c.RunIsectFallback = s.RunIsectFallback.Load()
	c.GroupFilteredServed = s.GroupFilteredServed.Load()
	c.GroupFilteredFallback = s.GroupFilteredFallback.Load()
	c.TLServed = c.KernelServed[KTimelineAdd] + c.KernelServed[KHistAdd]
	c.TLFallback = c.KernelFallback[KTimelineAdd] + c.KernelFallback[KHistAdd]
	return c
}

// countSegs tallies the codec of every decoded column segment of set into
// the codec-mix counters. A no-op for blocks without v2.2 codec metadata.
func (s *ScanStats) countSegs(bd *trace.BlockData, set trace.ColSet) {
	for col := 0; col < trace.NumCols; col++ {
		if set&(trace.ColSet(1)<<col) == 0 {
			continue
		}
		if id, ok := bd.SegCodec(col); ok {
			s.Segs[id].Add(1)
		}
	}
}

// lazySrc is the undecoded remainder of a chunk built by FromBlocksSpec:
// the block payload, the row selection the residual filter chose, and the
// set of columns already materialized. The mutex serializes Require calls
// so concurrent kernels may demand columns of the same chunk safely.
type lazySrc struct {
	mu    sync.Mutex
	bd    *trace.BlockData
	sel   []int32 // block row indices kept by the filter; nil = all rows
	have  trace.ColSet
	stats *ScanStats
}

// Require materializes the requested columns of the chunk, decoding any
// missing segments from the retained block payload. It is a no-op for
// eagerly built chunks and for columns already present. Safe for concurrent
// use.
func (c *Chunk) Require(want trace.ColSet) error {
	l := c.lazy
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	missing := want &^ l.have
	if missing == 0 {
		return nil
	}
	var cols trace.Columns
	decoded, err := l.bd.Decode(missing, &cols)
	if err != nil {
		return err
	}
	got := missing
	if !l.bd.Projectable() {
		got = trace.AllCols &^ l.have // fallback decode fills everything
	}
	c.adopt(&cols, l.sel, got)
	l.have |= got
	if l.stats != nil && decoded > 0 {
		// decoded == 0 means a shared-cache memo hit: the block's columns
		// were copied out, not re-decoded, so the scan did no decode work.
		l.stats.DecodedBytes.Add(decoded)
		l.stats.countSegs(l.bd, got)
	}
	if l.have == trace.AllCols {
		l.bd = nil // payload no longer needed; let it go
	}
	return nil
}

// Materialize decodes the given columns for every chunk, fanning out over
// up to par workers. Eager tables return immediately.
func (t *Table) Materialize(par int, want trace.ColSet) error {
	return t.MaterializeContext(context.Background(), par, want)
}

// MaterializeContext is Materialize with cancellation: each chunk worker
// observes ctx before decoding, so a canceled caller stops mid-table.
func (t *Table) MaterializeContext(ctx context.Context, par int, want trace.ColSet) error {
	errs := make([]error, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		if errs[k] = ctx.Err(); errs[k] != nil {
			return
		}
		errs[k] = t.chunks[k].Require(want)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gather selects rows of src by block row index.
func gather[T any](src []T, sel []int32) []T {
	dst := make([]T, len(sel))
	for i, j := range sel {
		dst[i] = src[j]
	}
	return dst
}

// adopt installs decoded block columns into the chunk: a direct slice
// adoption when the chunk keeps every block row (sel == nil), a gather by
// the filter's row selection otherwise. Only columns in set are touched.
func (c *Chunk) adopt(cols *trace.Columns, sel []int32, set trace.ColSet) {
	if sel == nil {
		if set&trace.ColLevel != 0 {
			c.Level = cols.Level[:c.N]
		}
		if set&trace.ColOp != 0 {
			c.Op = cols.Op[:c.N]
		}
		if set&trace.ColLib != 0 {
			c.Lib = cols.Lib[:c.N]
		}
		if set&trace.ColRank != 0 {
			c.Rank = cols.Rank[:c.N]
		}
		if set&trace.ColNode != 0 {
			c.Node = cols.Node[:c.N]
		}
		if set&trace.ColApp != 0 {
			c.App = cols.App[:c.N]
		}
		if set&trace.ColFile != 0 {
			c.File = cols.File[:c.N]
		}
		if set&trace.ColOffset != 0 {
			c.Offset = cols.Offset[:c.N]
		}
		if set&trace.ColSize != 0 {
			c.Size = cols.Size[:c.N]
		}
		if set&trace.ColStart != 0 {
			c.Start = cols.Start[:c.N]
		}
		if set&trace.ColEnd != 0 {
			c.End = cols.End[:c.N]
		}
		return
	}
	if set&trace.ColLevel != 0 {
		c.Level = gather(cols.Level, sel)
	}
	if set&trace.ColOp != 0 {
		c.Op = gather(cols.Op, sel)
	}
	if set&trace.ColLib != 0 {
		c.Lib = gather(cols.Lib, sel)
	}
	if set&trace.ColRank != 0 {
		c.Rank = gather(cols.Rank, sel)
	}
	if set&trace.ColNode != 0 {
		c.Node = gather(cols.Node, sel)
	}
	if set&trace.ColApp != 0 {
		c.App = gather(cols.App, sel)
	}
	if set&trace.ColFile != 0 {
		c.File = gather(cols.File, sel)
	}
	if set&trace.ColOffset != 0 {
		c.Offset = gather(cols.Offset, sel)
	}
	if set&trace.ColSize != 0 {
		c.Size = gather(cols.Size, sel)
	}
	if set&trace.ColStart != 0 {
		c.Start = gather(cols.Start, sel)
	}
	if set&trace.ColEnd != 0 {
		c.End = gather(cols.End, sel)
	}
}

// FromBlocksSpec executes a scan plan against a VANITRC2 block log: blocks
// the footer statistics rule out are never read, read blocks evaluate the
// pushed-down predicate in the compressed domain where the kernel registry
// allows and decode only the residual filter columns plus spec.Cols, and
// surviving rows form a table whose remaining columns materialize lazily
// from the retained payloads. The resulting table is row-identical — same
// rows, same order — to decoding everything and filtering in memory, at
// any par. The source is any trace.BlockSource — a BlockReader over a
// file, or a shared block cache. stats may be nil.
func FromBlocksSpec(src trace.BlockSource, par int, spec ScanSpec, stats *ScanStats) (*Table, error) {
	return FromBlocksSpecContext(context.Background(), src, par, spec, stats)
}

// FromBlocksSpecContext is FromBlocksSpec with cancellation: every block
// worker observes ctx before reading, so a canceled or timed-out caller
// aborts the scan mid-log instead of decoding the remaining blocks. The
// returned error is ctx.Err() when the abort was a cancellation.
func FromBlocksSpecContext(ctx context.Context, src trace.BlockSource, par int, spec ScanSpec, stats *ScanStats) (*Table, error) {
	if stats == nil {
		stats = &ScanStats{}
	}
	m := spec.Filter.NewMatcher()
	nb := src.NumBlocks()
	stats.BlocksTotal.Add(int64(nb))
	if src.BlockEvents() != ChunkRows {
		return fromBlocksSpecSlow(ctx, src, spec, m, stats)
	}
	fcols := spec.Filter.Cols()
	chunks := make([]*Chunk, nb)
	errs := make([]error, nb)
	parallel.ForEach(par, nb, func(k int) {
		if errs[k] = ctx.Err(); errs[k] != nil {
			return
		}
		bi := src.BlockAt(k)
		if m.SkipBlock(bi) {
			stats.BlocksPruned.Add(1)
			return
		}
		// The block's index entry can prove dimensions pass-all for every
		// row it holds (a containing time window, most usefully), so the
		// constrained set shrinks per block: a window+rank filter becomes a
		// pure rank filter on interior blocks — compressed-selection
		// territory — and a pure-window filter keeps interior blocks whole,
		// run summaries intact, without touching a row.
		need := m.NeedColsBlock(bi)
		bd, err := src.ReadBlock(k)
		if err != nil {
			errs[k] = err
			return
		}
		stats.PayloadBytes.Add(int64(bd.PayloadBytes()))
		stats.RowsTotal.Add(int64(bd.Count()))
		if need == 0 {
			ck := &Chunk{N: bd.Count()}
			lz := &lazySrc{bd: bd, stats: stats}
			if spec.Cols != 0 {
				var cols trace.Columns
				decoded, err := bd.Decode(spec.Cols, &cols)
				if err != nil {
					errs[k] = err
					return
				}
				lz.have = spec.Cols
				if !bd.Projectable() {
					lz.have = trace.AllCols
				}
				if decoded > 0 { // 0 = shared-cache memo hit, nothing decoded
					stats.DecodedBytes.Add(decoded)
					stats.countSegs(bd, lz.have)
				}
				ck.adopt(&cols, nil, lz.have)
			}
			ck.captureRuns(bd)
			if lz.have != trace.AllCols {
				ck.lazy = lz
			}
			stats.RowsKept.Add(int64(ck.N))
			chunks[k] = ck
			return
		}
		// Compressed-domain predicate: a single-dimension filter over a
		// run-structured segment selects rows directly from the runs — at
		// exact final size, with the filter column itself synthesized from
		// the runs so its segment is never decoded; otherwise the
		// dimensions the kernel registry can serve narrow a keep bitmap
		// and leave the residual set. Either way the decode shrinks to
		// residual columns only.
		sel, syn, selAll, direct := compressedSel(m, need, bd)
		var selSpans []trace.SelSpan
		if !direct {
			// Multi-dimension filters intersect run summaries across columns
			// and emit the selection directly, skipping the keep bitmap. The
			// intersection walk also hands back the selection's run structure
			// (its contiguous kept spans), so the re-cut below never has to
			// rediscover it from the dense vector.
			if msel, mspans, mall, mok, eligible := compressedSelMulti(m, need, bd); eligible {
				if mok {
					sel, selSpans, selAll, direct = msel, mspans, mall, true
					stats.RunIsectServed.Add(1)
				} else {
					stats.RunIsectFallback.Add(1)
				}
			}
		}
		var kb *keepBuf
		var residual trace.ColSet
		served := direct
		if !direct {
			kb, residual, served = compressedKeep(m, need, bd)
			if served && kb == nil && residual == 0 {
				// Every constrained dimension passed whole-block: keep the
				// block outright instead of filling a full selection vector.
				selAll, direct = true, true
			}
		}
		stats.tickKernel(KPredicate, served)
		want := fcols | spec.Cols
		if served {
			want = residual | spec.Cols
		}
		var cols trace.Columns
		decoded, err := bd.Decode(want, &cols)
		if err != nil {
			errs[k] = err
			return
		}
		have := want
		if !bd.Projectable() {
			have = trace.AllCols
		}
		if decoded > 0 {
			stats.DecodedBytes.Add(decoded)
			stats.countSegs(bd, have)
		}
		if !direct {
			if served {
				var keep []bool
				if kb != nil {
					keep = kb.b
				}
				sel = selectRowsResidual(m, &cols, keep, residual)
			} else {
				sel = selectRows(m, &cols, have)
			}
			releaseKeep(kb)
		}
		if !selAll && len(sel) == cols.N {
			selAll = true
		}
		kept := len(sel)
		if selAll {
			kept, sel = bd.Count(), nil // whole block kept: adopt without copying
		}
		stats.RowsKept.Add(int64(kept))
		if kept == 0 {
			return // every row filtered out; chunk dropped entirely
		}
		ck := &Chunk{N: kept}
		ck.adopt(&cols, sel, have)
		if sel != nil && syn.set != 0 {
			syn.install(ck)
			have |= syn.set
		}
		if sel == nil {
			ck.captureRuns(bd)
		} else if GroupedKernelsEnabled() {
			// Selection-backed chunk: re-cut the block's value runs against
			// the selection's spans so grouped execution fires on filtered
			// chunks too. Selections not born run-structured (residual row
			// predicates, keep bitmaps) coalesce here — they are still runs
			// of kept rows, just spelled out one index at a time.
			if selSpans == nil {
				selSpans = trace.AppendSelSpans(sel, nil)
			}
			if ck.captureRunsSel(bd, selSpans) {
				stats.GroupFilteredServed.Add(1)
			} else {
				stats.GroupFilteredFallback.Add(1)
			}
		}
		if have != trace.AllCols {
			ck.lazy = &lazySrc{bd: bd, sel: sel, have: have, stats: stats}
		}
		chunks[k] = ck
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	t := &Table{stats: stats}
	for _, ck := range chunks {
		if ck == nil {
			continue
		}
		ck.Base = t.n
		t.n += ck.N
		t.chunks = append(t.chunks, ck)
	}
	t.uniform = true
	for k, ck := range t.chunks {
		if k < len(t.chunks)-1 && ck.N != ChunkRows {
			t.uniform = false
			break
		}
	}
	return t, nil
}

// selectRows applies the residual row predicate over the decoded filter
// columns. Columns the filter does not constrain may be undecoded; their
// predicates are trivially true, so zero stands in.
func selectRows(m *trace.Matcher, cols *trace.Columns, have trace.ColSet) []int32 {
	sel := make([]int32, 0, cols.N)
	for j := 0; j < cols.N; j++ {
		var level, op uint8
		var rank int32
		var start int64
		if have&trace.ColLevel != 0 {
			level = cols.Level[j]
		}
		if have&trace.ColOp != 0 {
			op = cols.Op[j]
		}
		if have&trace.ColRank != 0 {
			rank = cols.Rank[j]
		}
		if have&trace.ColStart != 0 {
			start = cols.Start[j]
		}
		if m.Match(level, op, rank, start) {
			sel = append(sel, int32(j))
		}
	}
	return sel
}

// fromBlocksSpecSlow serves non-default block geometries: blocks still
// prune from the index, but surviving events re-chunk through a Builder.
func fromBlocksSpecSlow(ctx context.Context, src trace.BlockSource, spec ScanSpec, m *trace.Matcher, stats *ScanStats) (*Table, error) {
	b := NewBuilder()
	nb := src.NumBlocks()
	for k := 0; k < nb; k++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if m.SkipBlock(src.BlockAt(k)) {
			stats.BlocksPruned.Add(1)
			continue
		}
		bd, err := src.ReadBlock(k)
		if err != nil {
			return nil, err
		}
		stats.PayloadBytes.Add(int64(bd.PayloadBytes()))
		stats.RowsTotal.Add(int64(bd.Count()))
		var cols trace.Columns
		decoded, err := bd.Decode(trace.AllCols, &cols)
		if err != nil {
			return nil, err
		}
		if decoded > 0 {
			stats.DecodedBytes.Add(decoded)
			stats.countSegs(bd, trace.AllCols)
		}
		for j := 0; j < cols.N; j++ {
			if !m.Match(cols.Level[j], cols.Op[j], cols.Rank[j], cols.Start[j]) {
				continue
			}
			ev := trace.Event{
				Level:  trace.Level(cols.Level[j]),
				Op:     trace.Op(cols.Op[j]),
				Lib:    trace.Lib(cols.Lib[j]),
				Rank:   cols.Rank[j],
				Node:   cols.Node[j],
				App:    cols.App[j],
				File:   cols.File[j],
				Offset: cols.Offset[j],
				Size:   cols.Size[j],
				Start:  time.Duration(cols.Start[j]),
				End:    time.Duration(cols.End[j]),
			}
			b.Append(&ev)
			stats.RowsKept.Add(1)
		}
	}
	t := b.Finish()
	t.stats = stats
	return t, nil
}
