package colstore

// Grouped execution on dictionary codes. The characterization is dominated
// by grouped aggregation (per-file, per-app rollups), and the v2.2 dict
// segments already store each key column as small integer codes over a
// per-block dictionary. The pieces here keep that aggregation in the
// compressed domain:
//
//   - CodeUnifier maps block-local dictionary codes to scan-global ids,
//     built once per block from the dict segment headers (never from
//     decoded rows when the segment has structure). Stored dict values are
//     the trace's interned ids, so the global id IS the stored value; the
//     unifier validates density against a caller cap, discovers the
//     scan-global cardinality, and precomputes per-block code→id tables so
//     grouped kernels index dense arrays with one array load per row.
//   - GroupValueHist / GroupSumSize / GroupCountEq accumulate into dense
//     per-chunk arrays sized by that cardinality instead of hash maps,
//     streaming dict codes or run summaries without materializing the key
//     column.
//   - KeySpan is the op-dispatched span kernel: the five stable key columns
//     (level, rank, node, app, file) hoist as runs while op — which
//     alternates nearly every event in real traces and so kept the
//     six-column span kernel from ever firing — stays per-row.
//
// All of it is gated by SetGroupedKernelsEnabled on top of the global
// kernel switch; results are byte-identical either way (the codec-matrix
// equivalence suite pins a grouped-kernels-forced-off arm).

import (
	"math/bits"
	"sync/atomic"

	"vani/internal/parallel"
	"vani/internal/trace"
)

// groupedOff gates the grouped-execution kernels (inverted so the zero
// value means enabled), independently of the global kernel switch: the
// benchmark matrix flips only this to isolate the grouped-aggregation win,
// and the equivalence suite forces it off to prove the fallback identical.
var groupedOff atomic.Bool

// SetGroupedKernelsEnabled turns the grouped-execution kernels (key spans,
// code unifier, dense grouped aggregation) on or off. Off, the analyzer
// and the grouped kernels fall back to the map-keyed row paths — results
// must be byte-identical either way.
func SetGroupedKernelsEnabled(on bool) { groupedOff.Store(!on) }

// GroupedKernelsEnabled reports whether grouped-execution kernels are on
// (they also require the global kernel switch).
func GroupedKernelsEnabled() bool { return !groupedOff.Load() && KernelsEnabled() }

// keyRunCols are the run columns a key span holds constant: the four
// groupable key columns plus level. Op is deliberately absent — it
// alternates nearly every event in real traces, so requiring its run
// summary is what kept the six-column span kernel from ever firing there.
var keyRunCols = [...]int{int(ColRank), int(ColNode), int(ColApp), int(ColFile), runLevel}

// KeySpan is a maximal run of chunk rows over which the five stable key
// columns — level, rank, node, app, file — are constant. Op varies within
// the span and is dispatched per row by the caller. Lo is inclusive, Hi
// exclusive, both chunk-relative.
type KeySpan struct {
	Lo, Hi     int
	Level      uint8
	Rank, Node int32
	App, File  int32
}

// keySpans merges the chunk's five stable-key run summaries into key
// spans, appending to dst. It reports false (serving nothing) unless every
// key column carries a registry-served run summary.
func (c *Chunk) keySpans(dst []KeySpan) ([]KeySpan, bool) {
	for _, ri := range keyRunCols {
		if !c.runUsable(KKeySpan, ri) {
			return dst, false
		}
	}
	var idx, rem [len(keyRunCols)]int
	for i, ri := range keyRunCols {
		rem[i] = int(c.runs[ri][0].N)
	}
	row := 0
	for row < c.N {
		n := rem[0]
		for i := 1; i < len(keyRunCols); i++ {
			if rem[i] < n {
				n = rem[i]
			}
		}
		dst = append(dst, KeySpan{
			Lo:    row,
			Hi:    row + n,
			Rank:  int32(c.runs[ColRank][idx[0]].Val),
			Node:  int32(c.runs[ColNode][idx[1]].Val),
			App:   int32(c.runs[ColApp][idx[2]].Val),
			File:  int32(c.runs[ColFile][idx[3]].Val),
			Level: uint8(c.runs[runLevel][idx[4]].Val),
		})
		row += n
		for i, ri := range keyRunCols {
			if rem[i] -= n; rem[i] == 0 {
				if idx[i]++; idx[i] < len(c.runs[ri]) {
					rem[i] = int(c.runs[ri][idx[i]].N)
				} else if row < c.N {
					return dst, false // summaries must tile the chunk exactly
				}
			}
		}
	}
	return dst, true
}

// ChunkKeySpans is the analyzer's grouped span-scan kernel request for
// chunk k: the chunk's stable-key spans appended to dst, or ok == false
// when any key column lacks a served run summary (the caller iterates rows
// instead). Either way the request is counted in the scan stats.
func (t *Table) ChunkKeySpans(k int, dst []KeySpan) ([]KeySpan, bool) {
	if !GroupedKernelsEnabled() {
		t.tickKernel(KKeySpan, false)
		return dst, false
	}
	dst, ok := t.chunks[k].keySpans(dst)
	t.tickKernel(KKeySpan, ok)
	return dst, ok
}

// wholeSegCursor returns a cursor over the chunk's encoded column segment
// when the chunk still holds its whole-block payload (every block row
// kept, nothing yet forced the payload away). Callers must Release it.
func (c *Chunk) wholeSegCursor(colIdx int) *trace.SegCursor {
	l := c.lazy
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.bd == nil || l.sel != nil {
		return nil
	}
	cur, err := l.bd.SegCursorAt(colIdx)
	if err != nil {
		return nil // corrupt segment: surface the error at Require instead
	}
	return cur
}

// colReady reports whether the columns are already materialized, so a
// scan over them costs no decode: eager chunks always are, lazy chunks
// once Require has covered the set.
func (c *Chunk) colReady(want trace.ColSet) bool {
	l := c.lazy
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return want&^l.have == 0
}

// CodeUnifier maps block-local dictionary codes of one key column to
// scan-global dense ids. Stored dict values are the trace's interned ids,
// so the global id of a code is its stored value; what the unifier adds is
// the scan-global cardinality (discovered from dict headers, run
// summaries and constants without materializing the column), a density
// guarantee against the caller's cap, and per-chunk code→id tables built
// once per block so grouped kernels translate a streamed code with a
// single array load.
type CodeUnifier struct {
	col    Col
	card   int32     // ids are 0..card-1
	hasNeg bool      // the column stores -1 somewhere (File's "no file")
	codes  [][]int32 // per chunk: block-local dict code → global id; nil = no dict segment
	served int       // chunks resolved from segment headers, not rows
}

// Card returns the scan-global cardinality: every column value is in
// [-1, Card), and dense accumulators indexed by value+1 need Card()+1
// slots.
func (u *CodeUnifier) Card() int32 { return u.card }

// HasNeg reports whether the column stores -1 anywhere (File's "no file"
// marker); callers indexing by bare value must reject or offset it.
func (u *CodeUnifier) HasNeg() bool { return u.hasNeg }

// ChunkCodes returns chunk k's block-local code→global-id table, or nil
// when that chunk's segment is not dict-coded.
func (u *CodeUnifier) ChunkCodes(k int) []int32 {
	if k < 0 || k >= len(u.codes) {
		return nil
	}
	return u.codes[k]
}

// ServedChunks reports how many chunks resolved from segment headers
// rather than materialized rows (observability for tests).
func (u *CodeUnifier) ServedChunks() int { return u.served }

// UnifyCodes builds the code unifier for a key column, one chunk at a
// time in chunk order: dict segments contribute their dictionary values
// (building the per-block code table), RLE segments their run values,
// constant segments their single value — all from headers, without
// materializing the column. Selection-backed chunks, whose whole-segment
// cursors refuse, serve from their captured run summaries instead — the
// block runs re-cut against the selection, so one note per run covers
// exactly the kept rows. Chunks whose column is already materialized fall
// back to a scan. It returns (nil, nil) when any stored value falls
// outside [-1, maxCard) or when a chunk would need a decode to answer
// (filtered chunk without a re-cut summary, structureless codec), meaning
// the column is not cheaply unifiable and callers must stay on the
// map-keyed path; the refusing chunk counts one KGroupAgg fallback —
// once per chunk, never once per key column.
func (t *Table) UnifyCodes(col Col, maxCard int32) (*CodeUnifier, error) {
	u := &CodeUnifier{col: col, codes: make([][]int32, len(t.chunks))}
	colIdx := bits.TrailingZeros64(uint64(col.traceCol()))
	maxVal := int64(-1)
	note := func(v int64) bool {
		if v < -1 || v >= int64(maxCard) {
			return false
		}
		if v < 0 {
			u.hasNeg = true
		} else if v > maxVal {
			maxVal = v
		}
		return true
	}
	for k, c := range t.chunks {
		dense := true
		served := false
		if GroupedKernelsEnabled() {
			if cur := c.wholeSegCursor(colIdx); cur != nil {
				if nd := cur.NumCodes(); nd > 0 {
					cm := make([]int32, nd)
					served = true
					for code := 0; code < nd; code++ {
						v := cur.DictVal(uint32(code))
						if !note(v) {
							dense = false
							break
						}
						cm[code] = int32(v)
					}
					if dense {
						u.codes[k] = cm
					}
				} else if v, cok := cur.ConstVal(); cok {
					served = true
					dense = note(v)
				} else if runs := cur.Runs(); len(runs) > 0 {
					served = true
					for _, r := range runs {
						if !note(r.Val) {
							dense = false
							break
						}
					}
				} else if mn, mx, _, fok := cur.FORStats(); fok {
					// FOR: every stored value lies in [min, max], so noting
					// the two achieved endpoints bounds the whole segment —
					// hasNeg and the cardinality follow without unpacking.
					served = true
					dense = note(mn) && note(mx)
				}
				cur.Release()
			}
			if !served {
				// No whole-segment cursor (selection-backed chunk, or the
				// payload is gone): the captured run summary — re-cut
				// against the selection for filtered chunks — still names
				// every kept value, one note per run, without a decode.
				if runs := c.runs[col]; runs != nil {
					served = true
					for _, r := range runs {
						if !note(r.Val) {
							dense = false
							break
						}
					}
				}
			}
		}
		if served {
			u.served++
		} else {
			// Never force a decode to discover unifiability: a chunk whose
			// segment can't serve from headers (filtered selection, raw
			// codec) contributes a scan only when the column is already
			// materialized. Forcing Require here would make the grouped
			// path decode columns a filtered scan was about to skip —
			// exactly the work grouped execution exists to avoid.
			if !c.colReady(col.traceCol()) {
				t.tickKernel(KGroupAgg, false)
				return nil, nil
			}
			for _, v := range c.col(col) {
				if !note(int64(v)) {
					dense = false
					break
				}
			}
		}
		if !dense {
			// The chunk defeats unification (value outside [-1, maxCard)):
			// one fallback tick for this chunk, however it was consulted.
			t.tickKernel(KGroupAgg, false)
			return nil, nil
		}
		t.tickKernel(KGroupAgg, served)
	}
	u.card = int32(maxVal + 1)
	return u, nil
}

// slot maps a column value (-1 allowed) to its dense accumulator index.
func slot(v int32) int { return int(v) + 1 }

// mergeDense adds per-chunk dense partials in chunk order.
func mergeDense(parts [][]int64, slots int) []int64 {
	out := make([]int64, slots)
	for _, p := range parts {
		for i, v := range p {
			out[i] += v
		}
	}
	return out
}

// GroupValueHist builds the dense value→row-count histogram of a key
// column: result[value+1] counts the rows storing value (index 0 collects
// the -1 rows of File). Chunks with a dict segment stream codes through
// the unifier's per-block table; chunks with run summaries contribute one
// increment per run; only structureless chunks materialize the column.
func (t *Table) GroupValueHist(par int, col Col, u *CodeUnifier) ([]int64, error) {
	colIdx := bits.TrailingZeros64(uint64(col.traceCol()))
	slots := int(u.card) + 1
	parts := make([][]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make([]int64, slots)
		parts[k] = h
		if GroupedKernelsEnabled() {
			if cm := u.codes[k]; cm != nil {
				if cur := c.wholeSegCursor(colIdx); cur != nil {
					if cur.NumCodes() == len(cm) {
						t.tickKernel(KGroupAgg, true)
						cur.ForEachCode(func(code uint32) bool {
							h[slot(cm[code])]++
							return true
						})
						cur.Release()
						return
					}
					cur.Release()
				}
			}
			if c.runUsable(KGroupAgg, int(col)) {
				t.tickKernel(KGroupAgg, true)
				for _, r := range c.runs[col] {
					h[slot(int32(r.Val))] += int64(r.N)
				}
				return
			}
		}
		t.tickKernel(KGroupAgg, false)
		if errs[k] = c.Require(col.traceCol()); errs[k] != nil {
			return
		}
		for _, v := range c.col(col) {
			h[slot(v)]++
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeDense(parts, slots), nil
}

// GroupSumSize sums the Size column per key value into a dense array
// (result[value+1], as GroupValueHist). The key column itself is never
// materialized on chunks with dict or run structure — codes stream with a
// row counter into Size, runs add whole Size spans.
func (t *Table) GroupSumSize(par int, col Col, u *CodeUnifier) ([]int64, error) {
	colIdx := bits.TrailingZeros64(uint64(col.traceCol()))
	slots := int(u.card) + 1
	parts := make([][]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make([]int64, slots)
		parts[k] = h
		if GroupedKernelsEnabled() {
			if cm := u.codes[k]; cm != nil {
				if cur := c.wholeSegCursor(colIdx); cur != nil {
					if cur.NumCodes() == len(cm) {
						if errs[k] = c.Require(trace.ColSize); errs[k] != nil {
							cur.Release()
							return
						}
						t.tickKernel(KGroupAgg, true)
						row := 0
						cur.ForEachCode(func(code uint32) bool {
							h[slot(cm[code])] += c.Size[row]
							row++
							return true
						})
						cur.Release()
						return
					}
					cur.Release()
				}
			}
			if c.runUsable(KGroupAgg, int(col)) {
				if errs[k] = c.Require(trace.ColSize); errs[k] != nil {
					return
				}
				t.tickKernel(KGroupAgg, true)
				row := 0
				for _, r := range c.runs[col] {
					s := slot(int32(r.Val))
					for _, sz := range c.Size[row : row+int(r.N)] {
						h[s] += sz
					}
					row += int(r.N)
				}
				return
			}
		}
		t.tickKernel(KGroupAgg, false)
		if errs[k] = c.Require(col.traceCol() | trace.ColSize); errs[k] != nil {
			return
		}
		keys := c.col(col)
		for j := 0; j < c.N; j++ {
			h[slot(keys[j])] += c.Size[j]
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeDense(parts, slots), nil
}

// GroupCountEq counts, per key value of col (dense, result[value+1]), the
// rows whose other key column equals val. Chunks carrying run summaries
// for both columns intersect the two run lists — one comparison per
// intersected segment — and never materialize either column.
func (t *Table) GroupCountEq(par int, col Col, u *CodeUnifier, other Col, val int32) ([]int64, error) {
	slots := int(u.card) + 1
	parts := make([][]int64, len(t.chunks))
	errs := make([]error, len(t.chunks))
	parallel.ForEach(par, len(t.chunks), func(k int) {
		c := t.chunks[k]
		h := make([]int64, slots)
		parts[k] = h
		if GroupedKernelsEnabled() && c.runUsable(KGroupAgg, int(col)) && c.runUsable(KGroupAgg, int(other)) {
			t.tickKernel(KGroupAgg, true)
			a, b := c.runs[col], c.runs[other]
			ai, bi := 0, 0
			ar, br := int(a[0].N), int(b[0].N)
			for row := 0; row < c.N; {
				n := ar
				if br < n {
					n = br
				}
				if int32(b[bi].Val) == val {
					h[slot(int32(a[ai].Val))] += int64(n)
				}
				row += n
				if ar -= n; ar == 0 && ai+1 < len(a) {
					ai++
					ar = int(a[ai].N)
				}
				if br -= n; br == 0 && bi+1 < len(b) {
					bi++
					br = int(b[bi].N)
				}
			}
			return
		}
		t.tickKernel(KGroupAgg, false)
		if errs[k] = c.Require(col.traceCol() | other.traceCol()); errs[k] != nil {
			return
		}
		keys, os := c.col(col), c.col(other)
		for j := 0; j < c.N; j++ {
			if os[j] == val {
				h[slot(keys[j])]++
			}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeDense(parts, slots), nil
}
