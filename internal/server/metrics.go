package server

// Expvar-style counters. Everything is a plain atomic so handler and worker
// goroutines update without locks; /metrics takes a point-in-time snapshot.
// The scan totals aggregate colstore.ScanCounters across every completed
// job, which makes pushdown effectiveness (blocks pruned, bytes decoded vs
// available) observable fleet-wide rather than per run.

import (
	"encoding/json"
	"sync/atomic"

	"vani/internal/colstore"
)

// Metrics holds the daemon's counters.
type Metrics struct {
	JobsQueued   atomic.Int64 // jobs accepted onto the queue
	JobsRunning  atomic.Int64 // gauge: jobs currently characterizing
	JobsDone     atomic.Int64 // jobs completed successfully
	JobsFailed   atomic.Int64 // jobs that errored or were canceled
	JobsRejected atomic.Int64 // uploads bounced with 429 (queue full)
	CacheHits    atomic.Int64 // report served without analyzer work
	CacheMisses  atomic.Int64 // upload that had to run the analyzer

	// What-if sweep jobs (POST /v1/sweep).
	SweepJobs      atomic.Int64 // sweep jobs accepted onto the queue
	SweepRuns      atomic.Int64 // grid points simulated across sweep jobs
	SweepCacheHits atomic.Int64 // sweep reports served from cache by spec hash

	// Scan-plan totals summed over completed jobs (core.Timings.Scan).
	ScanBlocksTotal  atomic.Int64
	ScanBlocksPruned atomic.Int64
	ScanRowsTotal    atomic.Int64
	ScanRowsKept     atomic.Int64
	ScanPayloadBytes atomic.Int64
	ScanDecodedBytes atomic.Int64

	// v2.2 column segments decoded, by codec (the served logs' codec mix).
	ScanSegRaw  atomic.Int64
	ScanSegRLE  atomic.Int64
	ScanSegDict atomic.Int64
	ScanSegFOR  atomic.Int64

	// Compressed-domain kernel requests served from encoded segments vs
	// fallen back to materialized row iteration, summed over jobs.
	ScanKernelsServed   atomic.Int64
	ScanKernelsFallback atomic.Int64

	// Grouped-execution kernels (key spans + code-unified group
	// aggregation) served vs fallen back, summed over jobs.
	ScanGroupKernelsServed   atomic.Int64
	ScanGroupKernelsFallback atomic.Int64

	// Selection-backed chunks whose re-cut run summaries let grouped
	// execution fire on filtered scans vs filtered chunks left on the
	// row path.
	ScanGroupFilteredServed   atomic.Int64
	ScanGroupFilteredFallback atomic.Int64

	// Run-aware distribution accumulators: chunk passes whose timeline and
	// size-histogram accumulation batched over span structure vs bucketed
	// per row.
	ScanTLKernelsServed   atomic.Int64
	ScanTLKernelsFallback atomic.Int64

	// Multi-dimension run-intersection selection: blocks served directly
	// from intersected run summaries vs eligible blocks that fell back to
	// the keep-bitmap path.
	ScanRunIsectServed   atomic.Int64
	ScanRunIsectFallback atomic.Int64

	// Shared decoded-block cache: block handles served without a read or
	// decode, blocks read and decoded into the cache, and the cache's
	// current worst-case byte charge (a gauge).
	BlockCacheHits   atomic.Int64
	BlockCacheMisses atomic.Int64
	BlockCacheBytes  atomic.Int64
}

// AddScan folds one job's scan counters into the totals.
func (m *Metrics) AddScan(sc colstore.ScanCounters) {
	m.ScanBlocksTotal.Add(sc.BlocksTotal)
	m.ScanBlocksPruned.Add(sc.BlocksPruned)
	m.ScanRowsTotal.Add(sc.RowsTotal)
	m.ScanRowsKept.Add(sc.RowsKept)
	m.ScanPayloadBytes.Add(sc.PayloadBytes)
	m.ScanDecodedBytes.Add(sc.DecodedBytes)
	m.ScanSegRaw.Add(sc.SegRaw)
	m.ScanSegRLE.Add(sc.SegRLE)
	m.ScanSegDict.Add(sc.SegDict)
	m.ScanSegFOR.Add(sc.SegFOR)
	m.ScanKernelsServed.Add(sc.KernelsServed)
	m.ScanKernelsFallback.Add(sc.KernelsFallback)
	m.ScanGroupKernelsServed.Add(sc.GroupServed)
	m.ScanGroupKernelsFallback.Add(sc.GroupFallback)
	m.ScanGroupFilteredServed.Add(sc.GroupFilteredServed)
	m.ScanGroupFilteredFallback.Add(sc.GroupFilteredFallback)
	m.ScanTLKernelsServed.Add(sc.TLServed)
	m.ScanTLKernelsFallback.Add(sc.TLFallback)
	m.ScanRunIsectServed.Add(sc.RunIsectServed)
	m.ScanRunIsectFallback.Add(sc.RunIsectFallback)
}

// MetricsSnapshot is the JSON shape served by GET /metrics.
type MetricsSnapshot struct {
	JobsQueued   int64 `json:"jobs_queued"`
	JobsRunning  int64 `json:"jobs_running"`
	JobsDone     int64 `json:"jobs_done"`
	JobsFailed   int64 `json:"jobs_failed"`
	JobsRejected int64 `json:"jobs_rejected"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`

	SweepJobs      int64 `json:"sweep_jobs"`
	SweepRuns      int64 `json:"sweep_runs"`
	SweepCacheHits int64 `json:"sweep_cache_hits"`

	ScanBlocksTotal  int64 `json:"scan_blocks_total"`
	ScanBlocksPruned int64 `json:"scan_blocks_pruned"`
	ScanRowsTotal    int64 `json:"scan_rows_total"`
	ScanRowsKept     int64 `json:"scan_rows_kept"`
	ScanPayloadBytes int64 `json:"scan_payload_bytes"`
	ScanDecodedBytes int64 `json:"scan_decoded_bytes"`

	ScanSegRaw  int64 `json:"scan_segs_raw"`
	ScanSegRLE  int64 `json:"scan_segs_rle"`
	ScanSegDict int64 `json:"scan_segs_dict"`
	ScanSegFOR  int64 `json:"scan_segs_for"`

	ScanKernelsServed   int64 `json:"scan_kernels_served"`
	ScanKernelsFallback int64 `json:"scan_kernels_fallback"`

	ScanGroupKernelsServed   int64 `json:"scan_group_kernels_served"`
	ScanGroupKernelsFallback int64 `json:"scan_group_kernels_fallback"`

	ScanGroupFilteredServed   int64 `json:"scan_group_filtered_served"`
	ScanGroupFilteredFallback int64 `json:"scan_group_filtered_fallback"`

	ScanTLKernelsServed   int64 `json:"scan_tl_kernels_served"`
	ScanTLKernelsFallback int64 `json:"scan_tl_kernels_fallback"`

	ScanRunIsectServed   int64 `json:"scan_runisect_served"`
	ScanRunIsectFallback int64 `json:"scan_runisect_fallback"`

	BlockCacheHits   int64 `json:"block_cache_hits"`
	BlockCacheMisses int64 `json:"block_cache_misses"`
	BlockCacheBytes  int64 `json:"block_cache_bytes"`

	// Trace-repository gauges (zero when vanid runs without -data-dir).
	// Snapshot cannot read them from atomics — they are filesystem state —
	// so handleMetrics fills them from repo.Stats at serve time.
	RepoShards      int64 `json:"repo_shards"`
	RepoFiles       int64 `json:"repo_files"`
	RepoCompactions int64 `json:"repo_compactions"`
	RepoBytes       int64 `json:"repo_bytes"`
}

// Snapshot reads every counter.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		JobsQueued:   m.JobsQueued.Load(),
		JobsRunning:  m.JobsRunning.Load(),
		JobsDone:     m.JobsDone.Load(),
		JobsFailed:   m.JobsFailed.Load(),
		JobsRejected: m.JobsRejected.Load(),
		CacheHits:    m.CacheHits.Load(),
		CacheMisses:  m.CacheMisses.Load(),

		SweepJobs:      m.SweepJobs.Load(),
		SweepRuns:      m.SweepRuns.Load(),
		SweepCacheHits: m.SweepCacheHits.Load(),

		ScanBlocksTotal:  m.ScanBlocksTotal.Load(),
		ScanBlocksPruned: m.ScanBlocksPruned.Load(),
		ScanRowsTotal:    m.ScanRowsTotal.Load(),
		ScanRowsKept:     m.ScanRowsKept.Load(),
		ScanPayloadBytes: m.ScanPayloadBytes.Load(),
		ScanDecodedBytes: m.ScanDecodedBytes.Load(),

		ScanSegRaw:  m.ScanSegRaw.Load(),
		ScanSegRLE:  m.ScanSegRLE.Load(),
		ScanSegDict: m.ScanSegDict.Load(),
		ScanSegFOR:  m.ScanSegFOR.Load(),

		ScanKernelsServed:   m.ScanKernelsServed.Load(),
		ScanKernelsFallback: m.ScanKernelsFallback.Load(),

		ScanGroupKernelsServed:   m.ScanGroupKernelsServed.Load(),
		ScanGroupKernelsFallback: m.ScanGroupKernelsFallback.Load(),

		ScanGroupFilteredServed:   m.ScanGroupFilteredServed.Load(),
		ScanGroupFilteredFallback: m.ScanGroupFilteredFallback.Load(),

		ScanTLKernelsServed:   m.ScanTLKernelsServed.Load(),
		ScanTLKernelsFallback: m.ScanTLKernelsFallback.Load(),

		ScanRunIsectServed:   m.ScanRunIsectServed.Load(),
		ScanRunIsectFallback: m.ScanRunIsectFallback.Load(),

		BlockCacheHits:   m.BlockCacheHits.Load(),
		BlockCacheMisses: m.BlockCacheMisses.Load(),
		BlockCacheBytes:  m.BlockCacheBytes.Load(),
	}
}

// MarshalJSON serves the snapshot, so a *Metrics can be encoded directly.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}
