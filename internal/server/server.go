// Package server implements vanid, the always-on characterization service:
// trace uploads are spooled content-addressed, characterization jobs run on
// a bounded worker pool with 429 backpressure, and finished reports are
// served from an LRU cache keyed by SHA-256(trace bytes) + normalized
// filter spec. This is the serving half of the paper's vision — the storage
// system queries characterizations on demand instead of running a one-shot
// CLI per trace.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vani"
	"vani/internal/cliutil"
	"vani/internal/repo"
	"vani/internal/trace"
	"vani/internal/workloads"
)

// Config tunes the daemon. The zero value works: Fill substitutes the
// defaults the flags in cmd/vanid advertise.
type Config struct {
	// Workers is the characterization pool size (default 4).
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; a full
	// queue turns uploads into 429 + Retry-After (default 64).
	QueueDepth int
	// CacheEntries bounds the report cache (default 256).
	CacheEntries int
	// CacheBytes bounds the shared decoded-block cache's worst-case
	// residency (default 256 MiB). Hot VANITRC2 traces stay mmap-resident
	// with their blocks decoded once across requests; 0 keeps the default,
	// negative disables the cache.
	CacheBytes int64
	// SpoolDir receives uploaded traces, content-addressed by SHA-256
	// (default: a fresh directory under os.TempDir). Ignored when DataDir
	// selects the persistent repository instead.
	SpoolDir string
	// DataDir roots the persistent trace repository. When set, uploads
	// survive restarts: they land in workload/day shards under DataDir, a
	// crash-safe manifest indexes them, and the fleet-query endpoints are
	// mounted. Empty keeps the legacy throwaway spool.
	DataDir string
	// CompactEvery is the background compaction period for the repository
	// (0 disables the loop; POST /v1/compact still works). Only meaningful
	// with DataDir.
	CompactEvery time.Duration
	// RetainAge drops stored traces older than this during repository GC
	// (0 keeps everything). Only meaningful with DataDir.
	RetainAge time.Duration
	// RetainCount caps the number of stored traces; GC drops the oldest
	// beyond it (0 = no cap). Only meaningful with DataDir.
	RetainCount int
	// RetainBytes caps the stored traces' total bytes the same way
	// (0 = no cap). Only meaningful with DataDir.
	RetainBytes int64
	// Storage is the storage model handed to the analyzer; nil means the
	// same default cmd/vani uses, keeping reports byte-identical across
	// the CLI and the service.
	Storage *vani.StorageConfig
	// Parallelism is the per-job analyzer parallelism (0 = GOMAXPROCS).
	Parallelism int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ so aggregation
	// hot spots are profileable in the running service. Off by default: the
	// endpoints expose internals and cost CPU, so they are opt-in.
	EnablePprof bool
}

func (c *Config) fill() error {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.DataDir != "" {
		// Repository mode: uploads go through the persistent store, no
		// throwaway spool needed.
		return nil
	}
	if c.SpoolDir == "" {
		dir, err := os.MkdirTemp("", "vanid-spool-")
		if err != nil {
			return fmt.Errorf("spool dir: %w", err)
		}
		c.SpoolDir = dir
	} else if err := os.MkdirAll(c.SpoolDir, 0o755); err != nil {
		return fmt.Errorf("spool dir: %w", err)
	}
	return nil
}

// Server is the vanid HTTP service.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	metrics *Metrics
	cache   *reportCache
	blocks  *blockCache // shared decoded-block cache; nil when disabled
	repo    *repo.Repo  // persistent trace repository; nil in spool mode

	repoOnce sync.Once // repository closes exactly once across Shutdown/Close

	baseCtx context.Context // canceled to abort in-flight jobs
	abort   context.CancelFunc

	mu          sync.Mutex
	closed      bool
	queue       chan *job
	jobs        map[string]*job
	jobByReport map[string]*job // in-flight dedup: reportID → queued/running job
	seq         atomic.Int64

	wg sync.WaitGroup

	// beforeJob, when set, runs at the head of every worker job — tests
	// block here to hold the pool busy and fill the queue.
	beforeJob func()
}

// New builds the service and starts its worker pool. Callers own shutdown:
// Shutdown drains, Close aborts.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	metrics := &Metrics{}
	s := &Server{
		cfg:         cfg,
		metrics:     metrics,
		cache:       newReportCache(cfg.CacheEntries),
		baseCtx:     ctx,
		abort:       cancel,
		queue:       make(chan *job, cfg.QueueDepth),
		jobs:        make(map[string]*job),
		jobByReport: make(map[string]*job),
	}
	if cfg.CacheBytes > 0 {
		s.blocks = newBlockCache(cfg.CacheBytes, metrics)
	}
	if cfg.DataDir != "" {
		rp, err := repo.Open(cfg.DataDir, repo.Options{
			CompactEvery: cfg.CompactEvery,
			RetainAge:    cfg.RetainAge,
			RetainCount:  cfg.RetainCount,
			RetainBytes:  cfg.RetainBytes,
		})
		if err != nil {
			cancel()
			return nil, fmt.Errorf("opening trace repository: %w", err)
		}
		s.repo = rp
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/traces", s.handleUpload)
	s.mux.HandleFunc("POST /v1/characterize", s.handleCharacterize)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/reports/{id}", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.repo != nil {
		s.mux.HandleFunc("GET /fleet/query", s.handleFleet)
		s.mux.HandleFunc("POST /v1/compact", s.handleCompact)
	}
	if cfg.EnablePprof {
		// net/http/pprof registers on DefaultServeMux at import; serve the
		// same handlers from this mux only when the operator opted in.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters (tests and embedders read them directly).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Shutdown drains gracefully: new uploads are refused, queued and running
// jobs finish, then the pool exits. If ctx expires first the remaining
// work is aborted via the base context and Shutdown returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.closeRepo()
		return nil
	case <-ctx.Done():
		s.abort() // in-flight characterizations observe this mid-scan
		<-done
		s.closeRepo()
		return ctx.Err()
	}
}

// closeRepo checkpoints and closes the repository after the worker pool has
// exited (no scans hold handles). Safe to call multiple times and without a
// repository.
func (s *Server) closeRepo() {
	if s.repo == nil {
		return
	}
	s.repoOnce.Do(func() {
		s.repo.Close() //nolint:errcheck // shutdown path; manifest replay recovers
	})
}

// Close aborts everything immediately and waits for the pool to exit.
func (s *Server) Close() {
	s.abort()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Shutdown(ctx) //nolint:errcheck // already-canceled ctx: drain skipped
}

func (s *Server) storageCfg() *vani.StorageConfig {
	if s.cfg.Storage != nil {
		return s.cfg.Storage.Clone()
	}
	cfg := workloads.DefaultSpec().Storage
	return &cfg
}

// parseFilter compiles the request's window/ranks/levels/ops query
// parameters through the same parser the CLI flags use.
func parseFilter(r *http.Request) (trace.Filter, error) {
	q := r.URL.Query()
	return cliutil.ParseFilter(q.Get("window"), q.Get("ranks"), q.Get("levels"), q.Get("ops"))
}

// spool streams the request body into a content-addressed file under the
// spool directory, returning the file path and the hex SHA-256 of the
// bytes. Identical uploads land on the same path; the rename is atomic so
// concurrent identical uploads are safe.
func (s *Server) spool(r io.Reader) (path, sha string, err error) {
	tmp, err := os.CreateTemp(s.cfg.SpoolDir, "upload-*")
	if err != nil {
		return "", "", err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	h := sha256.New()
	if _, err = io.Copy(io.MultiWriter(tmp, h), r); err != nil {
		return "", "", err
	}
	if err = tmp.Close(); err != nil {
		return "", "", err
	}
	sha = hex.EncodeToString(h.Sum(nil))
	path = filepath.Join(s.cfg.SpoolDir, sha+".trc")
	if err = os.Rename(tmp.Name(), path); err != nil {
		return "", "", err
	}
	return path, sha, nil
}

// admit stores and validates an upload and resolves its content address.
// In repository mode the bytes land in the persistent sharded store and the
// returned handle pins the backing file for the scan's lifetime; in legacy
// mode they land in the throwaway spool (h is nil). admit answers the
// request itself (and returns ok=false) on bad input or a cache hit.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (loc traceLoc, h *repo.Handle, repID string, f trace.Filter, ok bool) {
	f, err := parseFilter(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	if s.repo != nil {
		return s.admitRepo(w, r, f)
	}
	path, sha, err := s.spool(r.Body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("spooling upload: %v", err))
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	format, err := trace.SniffFile(path)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unrecognized trace format (want VANITRC1 or VANITRC2)")
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	repID = reportID(sha, f)
	if _, hit := s.cache.Get(repID); hit {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, jobStatus{ReportID: repID, Status: string(jobDone)})
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	loc = traceLoc{sha: sha, path: path, v2: format == trace.FormatV2}
	return loc, nil, repID, f, true
}

// admitRepo is admit's repository-mode tail: the body goes through
// Repo.Add (content-addressed, deduplicated, durable) and the trace's
// current location — loose shard file or pack section — is pinned.
func (s *Server) admitRepo(w http.ResponseWriter, r *http.Request, f trace.Filter) (loc traceLoc, h *repo.Handle, repID string, _ trace.Filter, ok bool) {
	sha, _, err := s.repo.Add(r.Body)
	if err != nil {
		if errors.Is(err, repo.ErrNotTrace) {
			httpError(w, http.StatusBadRequest, "unrecognized trace format (want VANITRC1 or VANITRC2)")
		} else {
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("storing upload: %v", err))
		}
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	repID = reportID(sha, f)
	if _, hit := s.cache.Get(repID); hit {
		s.metrics.CacheHits.Add(1)
		writeJSON(w, http.StatusOK, jobStatus{ReportID: repID, Status: string(jobDone)})
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	h, err = s.repo.Acquire(sha)
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("pinning stored trace: %v", err))
		return traceLoc{}, nil, "", trace.Filter{}, false
	}
	loc = traceLoc{sha: sha, path: h.Path(), off: h.Off(), size: h.Size(), v2: h.Packed()}
	if !loc.v2 {
		if format, err := trace.SniffFile(loc.path); err == nil && format == trace.FormatV2 {
			loc.v2 = true
		}
	}
	return loc, h, repID, f, true
}

// handleUpload is POST /v1/traces: spool, dedupe against the cache and
// in-flight jobs, then enqueue with backpressure.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	loc, h, repID, f, ok := s.admit(w, r)
	if !ok {
		return
	}
	s.metrics.CacheMisses.Add(1)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		releaseHandle(h)
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	// An identical upload already queued or running: join it instead of
	// doing the work twice.
	if j, inflight := s.jobByReport[repID]; inflight {
		s.mu.Unlock()
		releaseHandle(h)
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	j := &job{
		id:       fmt.Sprintf("j%08d", s.seq.Add(1)),
		reportID: repID,
		loc:      loc,
		handle:   h,
		filter:   f,
		state:    jobQueued,
		done:     make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		releaseHandle(h)
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full, retry later")
		return
	}
	s.jobs[j.id] = j
	s.jobByReport[repID] = j
	s.mu.Unlock()
	s.metrics.JobsQueued.Add(1)

	// Clear the in-flight marker once the job settles so a failed job can
	// be retried by re-uploading.
	go func() {
		<-j.done
		s.mu.Lock()
		if s.jobByReport[repID] == j {
			delete(s.jobByReport, repID)
		}
		s.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, j.status())
}

// handleCharacterize is POST /v1/characterize: the synchronous low-latency
// path. The characterization runs inline under the request context, so a
// client that disconnects or times out aborts the scan mid-trace. Results
// still land in the shared cache.
func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	loc, h, repID, f, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer releaseHandle(h)
	s.metrics.CacheMisses.Add(1)
	s.metrics.JobsRunning.Add(1)
	rep, sc, err := s.characterize(r.Context(), loc, f, repID)
	s.metrics.JobsRunning.Add(-1)
	if err != nil {
		s.metrics.JobsFailed.Add(1)
		if trace.IsCtxErr(err) {
			// 499: client closed request (nginx convention); the scan was
			// abandoned mid-trace, nothing is cached.
			httpError(w, 499, "request canceled")
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.cache.Put(rep)
	s.metrics.AddScan(sc)
	s.metrics.JobsDone.Add(1)
	s.serveReport(w, r, rep)
}

// handleJob is GET /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleReport is GET /v1/reports/{id}: the cached artifact, YAML by
// default or JSON when the Accept header asks for it.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.cache.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such report (expired from cache or never computed)")
		return
	}
	s.metrics.CacheHits.Add(1)
	s.serveReport(w, r, rep)
}

func (s *Server) serveReport(w http.ResponseWriter, r *http.Request, rep *report) {
	if wantsJSON(r) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(rep.JSON) //nolint:errcheck // best-effort response body
		return
	}
	w.Header().Set("Content-Type", "application/yaml")
	w.WriteHeader(http.StatusOK)
	w.Write(rep.YAML) //nolint:errcheck // best-effort response body
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n") //nolint:errcheck
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot()
	if s.repo != nil {
		st := s.repo.Stats()
		snap.RepoShards = st.Shards
		snap.RepoFiles = st.Files
		snap.RepoCompactions = st.Compactions
		snap.RepoBytes = st.Bytes
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleFleet is GET /fleet/query: every stored characterization of one
// workload reduced into a cross-trace aggregate. The reduction order is
// fixed (traces sorted by content hash), so the YAML is byte-identical
// regardless of upload order, shard layout, compaction state, or the par
// query parameter.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	f, err := parseFilter(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := repo.Query{Workload: r.URL.Query().Get("workload"), Filter: f}
	if p := r.URL.Query().Get("par"); p != "" {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "par: want a non-negative integer")
			return
		}
		q.Parallelism = n
	}
	rep, err := s.repo.FleetQuery(r.Context(), q, s.fleetChar())
	if err != nil {
		if trace.IsCtxErr(err) {
			httpError(w, 499, "request canceled")
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if wantsJSON(r) {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	w.Header().Set("Content-Type", "application/yaml")
	w.WriteHeader(http.StatusOK)
	w.Write(rep.YAML()) //nolint:errcheck // best-effort response body
}

// fleetChar characterizes one repository trace for a fleet query, reusing
// the shared decoded-block cache so traces hot from single-trace jobs
// decode zero blocks here. Per-trace analyzer parallelism stays 1 — the
// fleet query already fans out across traces.
func (s *Server) fleetChar() repo.CharFunc {
	return func(ctx context.Context, h *repo.Handle, f trace.Filter) (*vani.Characterization, error) {
		opt := vani.DefaultAnalyzerOptions()
		opt.Storage = s.storageCfg()
		opt.Parallelism = 1
		opt.Filter = f
		loc := traceLoc{sha: h.SHA(), path: h.Path(), off: h.Off(), size: h.Size(), v2: h.Packed()}
		if !loc.v2 {
			if format, err := trace.SniffFile(loc.path); err == nil && format == trace.FormatV2 {
				loc.v2 = true
			}
		}
		return s.analyze(ctx, loc, opt)
	}
}

// handleCompact is POST /v1/compact: one synchronous compaction pass (small
// loose uploads merged into consolidated packs) followed by retention GC.
func (s *Server) handleCompact(w http.ResponseWriter, _ *http.Request) {
	packed, err := s.repo.CompactNow()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("compacting: %v", err))
		return
	}
	dropped, err := s.repo.GC()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("gc: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"packed": packed, "dropped": dropped})
}

// wantsJSON reports whether the Accept header prefers JSON over the
// default YAML rendering.
func wantsJSON(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort response body
}

type apiError struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, apiError{Error: msg})
}

// WaitJob blocks until the job settles or ctx expires — a convenience for
// embedders and tests; the HTTP API polls instead.
func (s *Server) WaitJob(ctx context.Context, id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return errors.New("no such job")
	}
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
