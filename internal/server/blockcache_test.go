package server

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"vani"
	"vani/internal/cliutil"
	"vani/internal/trace"
	"vani/internal/workloads"
)

// writeTraceFile encodes a synthetic v2 trace to a file and returns its path.
func writeTraceFile(t *testing.T, dir, name string, n int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, testTraceBytes(t, trace.FormatV2, n), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBlockCacheZeroRedecode is the tentpole's server contract: a second
// query against a hot trace — a different filter spec, so a genuinely new
// characterization job — serves every block from the shared cache and
// performs zero block decodes, observable through /metrics. The report it
// serves is still byte-identical to the CLI pipeline.
func TestBlockCacheZeroRedecode(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	if s.blocks == nil {
		t.Fatal("default config did not enable the block cache")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := testTraceBytes(t, trace.FormatV2, 40000)
	code, st1 := upload(t, ts, "/v1/traces?ranks=0-7", body)
	if code != 202 {
		t.Fatalf("first upload: status %d", code)
	}
	pollJob(t, ts, st1.ID)
	m1 := getMetrics(t, ts)
	if m1.BlockCacheMisses == 0 {
		t.Fatal("first job read no blocks through the cache")
	}
	if m1.BlockCacheBytes == 0 {
		t.Error("cache holds a trace but reports zero bytes")
	}
	if m1.ScanDecodedBytes == 0 {
		t.Fatal("first job decoded nothing")
	}

	// A different spec is a different report: the analyzer runs again, but
	// every block handle comes from the cache and no byte is re-decoded.
	code, st2 := upload(t, ts, "/v1/traces?ranks=8-15", body)
	if code != 202 {
		t.Fatalf("second upload: status %d", code)
	}
	if st2.ReportID == st1.ReportID {
		t.Fatal("different specs share a report id")
	}
	pollJob(t, ts, st2.ID)
	m2 := getMetrics(t, ts)
	if m2.BlockCacheHits == 0 {
		t.Error("second job hit the cache zero times")
	}
	if m2.BlockCacheMisses != m1.BlockCacheMisses {
		t.Errorf("second job missed the cache: %d -> %d", m1.BlockCacheMisses, m2.BlockCacheMisses)
	}
	if m2.ScanDecodedBytes != m1.ScanDecodedBytes {
		t.Errorf("second job re-decoded blocks: decoded bytes %d -> %d",
			m1.ScanDecodedBytes, m2.ScanDecodedBytes)
	}

	// The cache-served report matches the CLI pipeline byte for byte.
	code, gotYAML, _ := getReport(t, ts, st2.ReportID, "")
	if code != 200 {
		t.Fatalf("report: status %d", code)
	}
	path := writeTraceFile(t, t.TempDir(), "trace.trc", 40000)
	opt := vani.DefaultAnalyzerOptions()
	cfg := workloads.DefaultSpec().Storage
	opt.Storage = &cfg
	f, err := cliutil.ParseFilter("", "8-15", "", "")
	if err != nil {
		t.Fatal(err)
	}
	opt.Filter = f
	c, err := vani.CharacterizeFileWith(path, opt)
	if err != nil {
		t.Fatal(err)
	}
	if want := vani.ToYAML(c); !bytes.Equal(gotYAML, want) {
		t.Errorf("cache-served YAML differs from CLI output (%d vs %d bytes)", len(gotYAML), len(want))
	}
}

// TestBlockCacheDisabled: a negative budget turns the cache off and the
// plain file path serves everything; the cache counters never move.
func TestBlockCacheDisabled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, CacheBytes: -1})
	if s.blocks != nil {
		t.Fatal("negative CacheBytes did not disable the block cache")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := testTraceBytes(t, trace.FormatV2, 20000)
	code, st := upload(t, ts, "/v1/traces", body)
	if code != 202 {
		t.Fatalf("upload: status %d", code)
	}
	if final := pollJob(t, ts, st.ID); final.Status != string(jobDone) {
		t.Fatalf("job failed: %+v", final)
	}
	m := getMetrics(t, ts)
	if m.BlockCacheHits != 0 || m.BlockCacheMisses != 0 || m.BlockCacheBytes != 0 {
		t.Errorf("cache disabled but counters moved: %+v", m)
	}
}

// TestBlockCacheEviction: the LRU respects its byte budget — an unpinned
// cold trace evicts to admit a new one — and pinned entries survive even
// when the budget is blown.
func TestBlockCacheEviction(t *testing.T) {
	dir := t.TempDir()
	pa := writeTraceFile(t, dir, "a.trc", 5000)
	pb := writeTraceFile(t, dir, "b.trc", 5000)

	m := &Metrics{}
	probe, err := newTraceEntry("probe", pa, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	entryBytes := probe.bytes
	probe.drop()

	// Budget fits one entry but not two.
	bc := newBlockCache(entryBytes+entryBytes/2, m)
	a, err := bc.acquire("sha-a", pa, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bc.release(a)
	b, err := bc.acquire("sha-b", pb, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Len() != 1 {
		t.Fatalf("after eviction: %d entries, want 1", bc.Len())
	}
	if m.BlockCacheBytes.Load() != entryBytes {
		t.Errorf("gauge %d, want %d", m.BlockCacheBytes.Load(), entryBytes)
	}
	// b is pinned: admitting a again blows the budget but must not evict b.
	a2, err := bc.acquire("sha-a", pa, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bc.Len() != 2 {
		t.Fatalf("pinned entry evicted: %d entries, want 2", bc.Len())
	}
	// Both sources still read fine.
	for _, cs := range []*cachedSource{b, a2} {
		if _, err := cs.ReadBlock(0); err != nil {
			t.Fatal(err)
		}
	}
	bc.release(b)
	bc.release(a2)
}

// TestCachedSourceMemoizesBlocks: repeated reads return the one published
// handle, and hit/miss counters split accordingly.
func TestCachedSourceMemoizesBlocks(t *testing.T) {
	path := writeTraceFile(t, t.TempDir(), "t.trc", 20000)
	m := &Metrics{}
	bc := newBlockCache(1<<30, m)
	cs, err := bc.acquire("sha", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.release(cs)

	first, err := cs.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cs.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Error("repeat read returned a different block handle")
	}
	if h, mi := m.BlockCacheHits.Load(), m.BlockCacheMisses.Load(); h != 1 || mi != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, mi)
	}
	// A second acquire of the same trace shares the published handles.
	cs2, err := bc.acquire("sha", path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.release(cs2)
	other, err := cs2.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if other != first {
		t.Error("second acquire re-read an already-published block")
	}
}
