package server

// The job queue: a bounded channel drained by a fixed worker pool. The
// channel's capacity IS the backpressure policy — enqueue is a non-blocking
// send, and a full queue turns into 429 + Retry-After at the HTTP edge
// instead of unbounded memory growth. Workers run characterizations under
// the server's base context, so shutdown can either drain (close the
// channel, let workers finish) or abort (cancel the context, in-flight scans
// stop at the next chunk boundary).

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"vani"
	"vani/internal/colstore"
	"vani/internal/trace"
)

// jobState is the lifecycle of a characterization job.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one queued characterization: a spooled trace plus a filter spec.
type job struct {
	id       string
	reportID string
	traceSHA string
	path     string // content-addressed spool file
	filter   trace.Filter

	mu    sync.Mutex
	state jobState
	errs  string

	done chan struct{} // closed when the job reaches done or failed
}

func (j *job) setState(st jobState, errMsg string) {
	j.mu.Lock()
	j.state = st
	j.errs = errMsg
	j.mu.Unlock()
}

// status snapshots the job for the API.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{ID: j.id, ReportID: j.reportID, Status: string(j.state), Error: j.errs}
}

// jobStatus is the JSON shape of GET /v1/jobs/{id} and the upload response.
type jobStatus struct {
	ID       string `json:"id,omitempty"`
	ReportID string `json:"report_id"`
	Status   string `json:"status"`
	Error    string `json:"error,omitempty"`
}

// worker drains the queue until it is closed (graceful drain) or the base
// context is canceled (forced abort, observed inside the characterization).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob characterizes one spooled trace and publishes the report.
func (s *Server) runJob(j *job) {
	if s.beforeJob != nil {
		s.beforeJob() // test hook: hold workers to fill the queue
	}
	j.setState(jobRunning, "")
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	rep, sc, err := s.characterize(s.baseCtx, j.path, j.traceSHA, j.filter, j.reportID)
	if err != nil {
		j.setState(jobFailed, err.Error())
		s.metrics.JobsFailed.Add(1)
		close(j.done)
		return
	}
	s.cache.Put(rep)
	s.metrics.AddScan(sc)
	s.metrics.JobsDone.Add(1)
	j.setState(jobDone, "")
	close(j.done)
}

// characterize runs the analyzer over the spooled trace at path exactly the
// way cmd/vani does — same default storage model, same filter pushdown, same
// YAML renderer — so the served artifact is byte-identical to the CLI's.
// VANITRC2 traces route through the shared decoded-block cache: repeat
// queries against a hot trace (any filter spec) perform zero block decodes.
func (s *Server) characterize(ctx context.Context, path, sha string, f trace.Filter, id string) (*report, colstore.ScanCounters, error) {
	opt := vani.DefaultAnalyzerOptions()
	opt.Storage = s.storageCfg()
	opt.Parallelism = s.cfg.Parallelism
	opt.Filter = f
	var timings vani.AnalyzerTimings
	opt.Stats = &timings

	c, err := s.analyze(ctx, path, sha, opt)
	if err != nil {
		return nil, colstore.ScanCounters{}, err
	}
	js, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, colstore.ScanCounters{}, fmt.Errorf("encoding report: %w", err)
	}
	js = append(js, '\n')
	return &report{ID: id, YAML: vani.ToYAML(c), JSON: js}, timings.Scan, nil
}

// analyze picks the read path: block-cached for VANITRC2 when the cache is
// on, the plain file path otherwise. Both produce the identical
// characterization; the cache only changes where blocks decode.
func (s *Server) analyze(ctx context.Context, path, sha string, opt vani.AnalyzerOptions) (*vani.Characterization, error) {
	if s.blocks != nil && sha != "" {
		if format, err := trace.SniffFile(path); err == nil && format == trace.FormatV2 {
			src, err := s.blocks.acquire(sha, path)
			if err == nil {
				defer s.blocks.release(src)
				return vani.CharacterizeBlocksContext(ctx, src, opt)
			}
			// Cache build failed (mmap limits, truncated spool): the plain
			// file path below still serves the request.
		}
	}
	return vani.CharacterizeFileContext(ctx, path, opt)
}
