package server

// The job queue: a bounded channel drained by a fixed worker pool. The
// channel's capacity IS the backpressure policy — enqueue is a non-blocking
// send, and a full queue turns into 429 + Retry-After at the HTTP edge
// instead of unbounded memory growth. Workers run characterizations under
// the server's base context, so shutdown can either drain (close the
// channel, let workers finish) or abort (cancel the context, in-flight scans
// stop at the next chunk boundary).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"vani"
	"vani/internal/colstore"
	"vani/internal/repo"
	"vani/internal/trace"
)

// traceLoc locates one stored trace's bytes: a whole file (legacy spool,
// loose repository file) or a [off, off+size) section of a pack file.
type traceLoc struct {
	sha  string
	path string
	off  int64
	size int64 // 0 = whole file
	v2   bool  // VANITRC2 (pack members always are)
}

// jobState is the lifecycle of a characterization job.
type jobState string

const (
	jobQueued  jobState = "queued"
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one queued unit of work: a characterization (a stored trace plus
// a filter spec) or a what-if sweep (a parsed sweep document).
type job struct {
	id       string
	reportID string
	loc      traceLoc
	handle   *repo.Handle // repo mode: pins the backing file; nil on spool
	filter   trace.Filter
	sweep    *vani.Sweep // non-nil: this job runs a sweep, not a characterization

	mu          sync.Mutex
	state       jobState
	errs        string
	pointsDone  int // sweep progress: grid points finished
	pointsTotal int // sweep progress: grid size (0 for characterizations)

	done chan struct{} // closed when the job reaches done or failed
}

// releaseHandle unpins the job's repository handle (idempotent, nil-safe).
func (j *job) releaseHandle() { releaseHandle(j.handle) }

// releaseHandle unpins a repository handle; nil (spool mode) is a no-op.
func releaseHandle(h *repo.Handle) {
	if h != nil {
		h.Close()
	}
}

func (j *job) setState(st jobState, errMsg string) {
	j.mu.Lock()
	j.state = st
	j.errs = errMsg
	j.mu.Unlock()
}

// setProgress records how many sweep points have finished.
func (j *job) setProgress(done int) {
	j.mu.Lock()
	j.pointsDone = done
	j.mu.Unlock()
}

// status snapshots the job for the API.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID: j.id, ReportID: j.reportID, Status: string(j.state), Error: j.errs,
		PointsDone: j.pointsDone, PointsTotal: j.pointsTotal,
	}
}

// jobStatus is the JSON shape of GET /v1/jobs/{id} and the upload response.
// PointsDone/PointsTotal carry sweep progress and are omitted for
// characterization jobs.
type jobStatus struct {
	ID          string `json:"id,omitempty"`
	ReportID    string `json:"report_id"`
	Status      string `json:"status"`
	Error       string `json:"error,omitempty"`
	PointsDone  int    `json:"points_done,omitempty"`
	PointsTotal int    `json:"points_total,omitempty"`
}

// worker drains the queue until it is closed (graceful drain) or the base
// context is canceled (forced abort, observed inside the characterization).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued unit of work and publishes its report.
func (s *Server) runJob(j *job) {
	if j.sweep != nil {
		s.runSweepJob(j)
		return
	}
	defer j.releaseHandle()
	if s.beforeJob != nil {
		s.beforeJob() // test hook: hold workers to fill the queue
	}
	j.setState(jobRunning, "")
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	rep, sc, err := s.characterize(s.baseCtx, j.loc, j.filter, j.reportID)
	if err != nil {
		j.setState(jobFailed, err.Error())
		s.metrics.JobsFailed.Add(1)
		close(j.done)
		return
	}
	s.cache.Put(rep)
	s.metrics.AddScan(sc)
	s.metrics.JobsDone.Add(1)
	j.setState(jobDone, "")
	close(j.done)
}

// characterize runs the analyzer over the stored trace exactly the way
// cmd/vani does — same default storage model, same filter pushdown, same
// YAML renderer — so the served artifact is byte-identical to the CLI's.
// VANITRC2 traces route through the shared decoded-block cache: repeat
// queries against a hot trace (any filter spec) perform zero block decodes.
func (s *Server) characterize(ctx context.Context, loc traceLoc, f trace.Filter, id string) (*report, colstore.ScanCounters, error) {
	opt := vani.DefaultAnalyzerOptions()
	opt.Storage = s.storageCfg()
	opt.Parallelism = s.cfg.Parallelism
	opt.Filter = f
	var timings vani.AnalyzerTimings
	opt.Stats = &timings

	c, err := s.analyze(ctx, loc, opt)
	if err != nil {
		return nil, colstore.ScanCounters{}, err
	}
	js, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, colstore.ScanCounters{}, fmt.Errorf("encoding report: %w", err)
	}
	js = append(js, '\n')
	return &report{ID: id, YAML: vani.ToYAML(c), JSON: js}, timings.Scan, nil
}

// analyze picks the read path: block-cached for VANITRC2 when the cache is
// on, a section reader for pack members, the plain file path otherwise.
// All produce the identical characterization; the choice only changes
// where blocks decode.
func (s *Server) analyze(ctx context.Context, loc traceLoc, opt vani.AnalyzerOptions) (*vani.Characterization, error) {
	if s.blocks != nil && loc.sha != "" && loc.v2 {
		src, err := s.blocks.acquire(loc.sha, loc.path, loc.off, loc.size)
		if err == nil {
			defer s.blocks.release(src)
			return vani.CharacterizeBlocksContext(ctx, src, opt)
		}
		// Cache build failed (mmap limits, truncated file): the direct
		// paths below still serve the request.
	}
	if loc.off > 0 {
		// A pack member without the cache: scan its section in place.
		f, err := os.Open(loc.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sec := io.NewSectionReader(f, loc.off, loc.size)
		br, err := trace.NewBlockReader(trace.ReaderAtContext(ctx, sec), loc.size)
		if err != nil {
			return nil, err
		}
		return vani.CharacterizeBlocksContext(ctx, br, opt)
	}
	return vani.CharacterizeFileContext(ctx, loc.path, opt)
}
