//go:build !(linux || darwin)

package server

import "os"

// mapFile on platforms without the mmap syscall surface: always defer to
// the heap-read fallback.
func mapFile(*os.File, int64) ([]byte, bool, error) { return nil, false, nil }

func unmapFile([]byte) error { return nil }
