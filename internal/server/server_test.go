package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"vani"
	"vani/internal/cliutil"
	"vani/internal/trace"
	"vani/internal/workloads"
)

// testTraceBytes encodes a small synthetic trace in the given format.
func testTraceBytes(t *testing.T, format trace.Format, n int) []byte {
	t.Helper()
	tr := trace.NewTracer()
	tr.SetMeta(trace.Meta{Workload: "synthetic", Nodes: 4, Ranks: 16, PFSDir: "/p/gpfs1"})
	file := tr.FileID("/p/gpfs1/data")
	for i := 0; i < n; i++ {
		start := time.Duration(i) * time.Microsecond
		op := trace.OpWrite
		if i%3 == 0 {
			op = trace.OpRead
		}
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: int32(i % 16),
			File: file, Offset: int64(i) * 4096, Size: 4096,
			Start: start, End: start + time.Microsecond,
		})
	}
	var buf bytes.Buffer
	if err := trace.WriteFormat(&buf, tr.Finish(), format); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

// newTestServer builds a server with small bounds and registers cleanup.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.SpoolDir == "" {
		cfg.SpoolDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// upload POSTs body to path and returns the decoded job status.
func upload(t *testing.T, ts *httptest.Server, path string, body []byte) (int, jobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, st
}

// pollJob polls until the job settles or the deadline passes.
func pollJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job: %v", err)
		}
		if st.Status == string(jobDone) || st.Status == string(jobFailed) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not settle in time")
	return jobStatus{}
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	return m
}

func getReport(t *testing.T, ts *httptest.Server, id, accept string) (int, []byte, string) {
	t.Helper()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/reports/"+id, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes(), resp.Header.Get("Content-Type")
}

// TestUploadToReportMatchesCLI drives the full HTTP path — upload, poll,
// fetch — and asserts the served YAML is byte-identical to what the CLI
// pipeline (CharacterizeFileWith + ToYAML with the default storage model)
// produces for the same trace and filter.
func TestUploadToReportMatchesCLI(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, format := range []trace.Format{trace.FormatV1, trace.FormatV2} {
		t.Run(format.String(), func(t *testing.T) {
			body := testTraceBytes(t, format, 40000)
			const query = "?window=5ms:30ms&ranks=0-7&ops=data"
			code, st := upload(t, ts, "/v1/traces"+query, body)
			if code != http.StatusAccepted {
				t.Fatalf("upload: status %d, want 202", code)
			}
			if st.ID == "" || st.ReportID == "" {
				t.Fatalf("upload response missing ids: %+v", st)
			}
			final := pollJob(t, ts, st.ID)
			if final.Status != string(jobDone) {
				t.Fatalf("job failed: %+v", final)
			}

			code, gotYAML, ctype := getReport(t, ts, st.ReportID, "")
			if code != http.StatusOK {
				t.Fatalf("report: status %d", code)
			}
			if ctype != "application/yaml" {
				t.Errorf("report content-type %q, want application/yaml", ctype)
			}

			// The CLI pipeline over the same bytes and spec.
			dir := t.TempDir()
			path := dir + "/trace.trc"
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
			opt := vani.DefaultAnalyzerOptions()
			cfg := workloads.DefaultSpec().Storage
			opt.Storage = &cfg
			f, err := cliutil.ParseFilter("5ms:30ms", "0-7", "", "data")
			if err != nil {
				t.Fatal(err)
			}
			opt.Filter = f
			c, err := vani.CharacterizeFileWith(path, opt)
			if err != nil {
				t.Fatal(err)
			}
			wantYAML := vani.ToYAML(c)
			if !bytes.Equal(gotYAML, wantYAML) {
				t.Errorf("served YAML differs from CLI output (%d vs %d bytes)", len(gotYAML), len(wantYAML))
			}

			// JSON rendering honors the Accept header.
			code, gotJSON, ctype := getReport(t, ts, st.ReportID, "application/json")
			if code != http.StatusOK || ctype != "application/json" {
				t.Fatalf("json report: status %d content-type %q", code, ctype)
			}
			if !json.Valid(gotJSON) {
				t.Error("json report is not valid JSON")
			}
		})
	}
}

// testTraceV2Bytes encodes the synthetic trace under explicit V2Options —
// the codec-variant uploads below.
func testTraceV2Bytes(t *testing.T, opt trace.V2Options, n int) []byte {
	t.Helper()
	tr := trace.NewTracer()
	tr.SetMeta(trace.Meta{Workload: "synthetic", Nodes: 4, Ranks: 16, PFSDir: "/p/gpfs1"})
	file := tr.FileID("/p/gpfs1/data")
	for i := 0; i < n; i++ {
		start := time.Duration(i) * time.Microsecond
		op := trace.OpWrite
		if i%3 == 0 {
			op = trace.OpRead
		}
		tr.Record(trace.Event{
			Level: trace.LevelPosix, Op: op, Rank: int32(i % 16),
			File: file, Offset: int64(i) * 4096, Size: 4096,
			Start: start, End: start + time.Microsecond,
		})
	}
	var buf bytes.Buffer
	if err := trace.WriteV2With(&buf, tr.Finish(), opt); err != nil {
		t.Fatalf("encoding trace: %v", err)
	}
	return buf.Bytes()
}

// TestCodecVariantUploadsServeIdenticalReports uploads the same trace
// encoded under every v2 codec strategy (v2.2 auto and each forced codec,
// plus the v2.1 layout, with and without flate) and asserts every served
// YAML report is byte-identical — and that decoding a v2.2 upload shows up
// in the /metrics codec-mix counters.
func TestCodecVariantUploadsServeIdenticalReports(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 16})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	variants := []trace.V2Options{
		{Codec: trace.CodecAuto},
		{Codec: trace.CodecAuto, Compress: true},
		{Codec: trace.CodecV21},
		{Codec: trace.CodecV21, Compress: true},
		{Codec: trace.CodecForceRaw},
		{Codec: trace.CodecForceRLE},
		{Codec: trace.CodecForceDict},
		{Codec: trace.CodecForceFOR},
	}
	var want []byte
	for i, opt := range variants {
		body := testTraceV2Bytes(t, opt, 30000)
		code, st := upload(t, ts, "/v1/traces?ops=data", body)
		if code != http.StatusAccepted {
			t.Fatalf("variant %d: upload status %d, want 202", i, code)
		}
		final := pollJob(t, ts, st.ID)
		if final.Status != string(jobDone) {
			t.Fatalf("variant %d: job failed: %+v", i, final)
		}
		code, yaml, _ := getReport(t, ts, st.ReportID, "")
		if code != http.StatusOK {
			t.Fatalf("variant %d: report status %d", i, code)
		}
		if i == 0 {
			want = yaml
		} else if !bytes.Equal(yaml, want) {
			t.Fatalf("variant %d (codec=%v compress=%v): served YAML differs from v2.2 auto",
				i, opt.Codec, opt.Compress)
		}
	}
	m := getMetrics(t, ts)
	if total := m.ScanSegRaw + m.ScanSegRLE + m.ScanSegDict + m.ScanSegFOR; total == 0 {
		t.Error("v2.2 uploads decoded but codec-mix counters are all zero")
	}
}

// TestCacheHitSkipsAnalyzer uploads the same trace with the same spec
// twice: the second upload must be answered from the cache with no analyzer
// work, observable in the metrics counters.
func TestCacheHitSkipsAnalyzer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := testTraceBytes(t, trace.FormatV2, 20000)
	code, st := upload(t, ts, "/v1/traces?ranks=0-3", body)
	if code != http.StatusAccepted {
		t.Fatalf("first upload: status %d", code)
	}
	pollJob(t, ts, st.ID)
	m1 := getMetrics(t, ts)
	if m1.JobsDone != 1 || m1.CacheMisses != 1 {
		t.Fatalf("after first upload: %+v", m1)
	}

	code, st2 := upload(t, ts, "/v1/traces?ranks=0-3", body)
	if code != http.StatusOK {
		t.Fatalf("second upload: status %d, want 200 (cache hit)", code)
	}
	if st2.Status != string(jobDone) || st2.ReportID != st.ReportID {
		t.Fatalf("second upload: %+v, want done with same report id", st2)
	}
	m2 := getMetrics(t, ts)
	if m2.CacheHits != m1.CacheHits+1 {
		t.Errorf("cache hits %d, want %d", m2.CacheHits, m1.CacheHits+1)
	}
	if m2.JobsDone != m1.JobsDone || m2.JobsQueued != m1.JobsQueued || m2.CacheMisses != m1.CacheMisses {
		t.Errorf("second upload did analyzer work: before %+v after %+v", m1, m2)
	}

	// A different spec over the same bytes is a different report.
	code, st3 := upload(t, ts, "/v1/traces?ranks=4-7", body)
	if code != http.StatusAccepted {
		t.Fatalf("third upload: status %d, want 202 (different spec)", code)
	}
	if st3.ReportID == st.ReportID {
		t.Error("different spec produced the same report id")
	}
	pollJob(t, ts, st3.ID)
}

// TestQueueBackpressure holds the single worker hostage, fills the queue,
// and asserts the overflow upload is bounced with 429 + Retry-After.
func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	var once sync.Once
	s.beforeJob = func() { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct traces so none of them dedupe against each other: the first
	// occupies the worker, two fill the queue, the fourth must bounce.
	var last jobStatus
	for i := 0; i < 3; i++ {
		body := testTraceBytes(t, trace.FormatV2, 1000+i)
		code, st := upload(t, ts, "/v1/traces", body)
		if code != http.StatusAccepted {
			t.Fatalf("upload %d: status %d, want 202", i, code)
		}
		last = st
	}
	body := testTraceBytes(t, trace.FormatV2, 5000)
	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow upload: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if m := getMetrics(t, ts); m.JobsRejected != 1 {
		t.Errorf("jobs_rejected = %d, want 1", m.JobsRejected)
	}

	once.Do(func() { close(release) })
	pollJob(t, ts, last.ID)
}

// TestSyncCharacterizeCanceled calls the synchronous endpoint with an
// already-canceled request context: the characterization must abort with
// the 499 client-closed-request status and cache nothing.
func TestSyncCharacterizeCanceled(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})

	body := testTraceBytes(t, trace.FormatV2, 40000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/characterize", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("canceled request: status %d, want 499", rec.Code)
	}
	if s.cache.Len() != 0 {
		t.Error("canceled characterization left a cached report")
	}
	if got := s.metrics.JobsFailed.Load(); got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}
}

// TestSyncCharacterize drives the synchronous endpoint end to end and
// checks its result lands in the shared cache.
func TestSyncCharacterize(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := testTraceBytes(t, trace.FormatV2, 20000)
	resp, err := http.Post(ts.URL+"/v1/characterize?ops=data", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync characterize: status %d", resp.StatusCode)
	}
	if s.cache.Len() != 1 {
		t.Errorf("cache has %d entries, want 1", s.cache.Len())
	}
	// The same upload through the async path is now a cache hit.
	code, st := upload(t, ts, "/v1/traces?ops=data", body)
	if code != http.StatusOK || st.Status != string(jobDone) {
		t.Errorf("async after sync: status %d %+v, want 200 done", code, st)
	}
}

// TestUploadValidation rejects malformed filters and non-trace bodies.
func TestUploadValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/traces?ranks=banana", "application/octet-stream",
		bytes.NewReader(testTraceBytes(t, trace.FormatV2, 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ranks: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/traces", "application/octet-stream",
		bytes.NewReader([]byte("this is not a trace")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/reports/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown report: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}
}

// TestShutdownDrains enqueues work, shuts down, and checks every accepted
// job settled and late uploads are refused.
func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		body := testTraceBytes(t, trace.FormatV2, 2000+i)
		code, st := upload(t, ts, "/v1/traces", body)
		if code != http.StatusAccepted {
			t.Fatalf("upload %d: status %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	m := s.metrics.Snapshot()
	if m.JobsDone != int64(len(ids)) {
		t.Errorf("after drain: %d jobs done, want %d (%+v)", m.JobsDone, len(ids), m)
	}

	resp, err := http.Post(ts.URL+"/v1/traces", "application/octet-stream",
		bytes.NewReader(testTraceBytes(t, trace.FormatV2, 100)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("upload after shutdown: status %d, want 503", resp.StatusCode)
	}
}

// TestInflightDedup uploads the same trace+spec twice while the worker is
// held: the second upload must join the first job, not enqueue a duplicate.
func TestInflightDedup(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := make(chan struct{})
	var once sync.Once
	s.beforeJob = func() { <-release }
	defer once.Do(func() { close(release) })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := testTraceBytes(t, trace.FormatV2, 1000)
	_, st1 := upload(t, ts, "/v1/traces", body)
	_, st2 := upload(t, ts, "/v1/traces", body)
	if st1.ID != st2.ID {
		t.Errorf("duplicate in-flight upload got a new job: %s vs %s", st1.ID, st2.ID)
	}
	if m := getMetrics(t, ts); m.JobsQueued != 1 {
		t.Errorf("jobs_queued = %d, want 1", m.JobsQueued)
	}
	once.Do(func() { close(release) })
	pollJob(t, ts, st1.ID)
}

func TestSpecKeyNormalizes(t *testing.T) {
	a := trace.Filter{Ranks: []int32{3, 1, 2}, Levels: []trace.Level{trace.LevelPosix, trace.LevelApp}}
	b := trace.Filter{Ranks: []int32{1, 2, 3, 2}, Levels: []trace.Level{trace.LevelApp, trace.LevelPosix}}
	if specKey(a) != specKey(b) {
		t.Errorf("equivalent specs key differently:\n%s\n%s", specKey(a), specKey(b))
	}
	c := trace.Filter{Ranks: []int32{1, 2}}
	if specKey(a) == specKey(c) {
		t.Error("different specs share a key")
	}
	if reportID("sha", a) != reportID("sha", b) {
		t.Error("equivalent specs address different reports")
	}
	if reportID("sha", a) == reportID("sha2", a) {
		t.Error("different traces address the same report")
	}
}

func TestCacheLRU(t *testing.T) {
	c := newReportCache(2)
	c.Put(&report{ID: "a"})
	c.Put(&report{ID: "b"})
	c.Get("a") // bump a
	c.Put(&report{ID: "c"})
	if _, ok := c.Get("b"); ok {
		t.Error("LRU kept b, should have evicted it")
	}
	for _, id := range []string{"a", "c"} {
		if _, ok := c.Get(id); !ok {
			t.Errorf("LRU evicted %s, should have kept it", id)
		}
	}
}

// TestPprofGating proves the profiling endpoints exist only when the
// operator opted in: absent (404) on a default server, served under
// /debug/pprof/ when EnablePprof is set.
func TestPprofGating(t *testing.T) {
	off := newTestServer(t, Config{Workers: 1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	resp, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/ (disabled): %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: got %d, want 404", resp.StatusCode)
	}

	on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	tsOn := httptest.NewServer(on.Handler())
	defer tsOn.Close()
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/ (enabled): %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: got %d, want 200", resp.StatusCode)
	}
}
