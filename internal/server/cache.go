package server

// Content-addressed report cache. A report's identity is derived entirely
// from its inputs — the SHA-256 of the raw trace bytes plus the normalized
// filter spec — so two uploads of the same log with the same spec map to
// the same entry no matter which client sent them or when. Entries hold the
// rendered YAML artifact (the byte-identity contract surface shared with
// cmd/vani) and its JSON rendering; eviction is plain LRU bounded by entry
// count.

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"vani/internal/trace"
)

// specKey renders a filter into its canonical form: ranks and levels
// sorted and deduplicated, durations in nanoseconds. Two specs with the
// same meaning always produce the same key.
func specKey(f trace.Filter) string {
	ranks := append([]int32(nil), f.Ranks...)
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	levels := append([]trace.Level(nil), f.Levels...)
	sort.Slice(levels, func(i, j int) bool { return levels[i] < levels[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "w=%d:%d;r=", int64(f.From), int64(f.To))
	for i, r := range ranks {
		if i > 0 && r == ranks[i-1] {
			continue
		}
		fmt.Fprintf(&b, "%d,", r)
	}
	b.WriteString(";l=")
	for i, l := range levels {
		if i > 0 && l == levels[i-1] {
			continue
		}
		fmt.Fprintf(&b, "%d,", int(l))
	}
	fmt.Fprintf(&b, ";o=%d", int(f.Ops))
	return b.String()
}

// reportID derives the content address of a report: SHA-256 over the trace
// hash and the canonical spec key.
func reportID(traceSHA string, f trace.Filter) string {
	h := sha256.New()
	h.Write([]byte(traceSHA))
	h.Write([]byte{'\n'})
	h.Write([]byte(specKey(f)))
	return hex.EncodeToString(h.Sum(nil))
}

// report is one cached characterization, pre-rendered in both formats.
type report struct {
	ID   string
	YAML []byte
	JSON []byte
}

// reportCache is an LRU over content-addressed reports.
type reportCache struct {
	mu      sync.Mutex
	entries int
	order   *list.List               // front = most recently used
	byID    map[string]*list.Element // value: *report
}

func newReportCache(entries int) *reportCache {
	return &reportCache{
		entries: entries,
		order:   list.New(),
		byID:    make(map[string]*list.Element),
	}
}

// Get returns the cached report and bumps its recency.
func (c *reportCache) Get(id string) (*report, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*report), true
}

// Put inserts (or refreshes) a report, evicting the least recently used
// entry when over capacity.
func (c *reportCache) Put(r *report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[r.ID]; ok {
		el.Value = r
		c.order.MoveToFront(el)
		return
	}
	c.byID[r.ID] = c.order.PushFront(r)
	for c.order.Len() > c.entries {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byID, last.Value.(*report).ID)
	}
}

// Len reports the number of cached entries.
func (c *reportCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
