package server

// POST /v1/sweep: what-if sweeps as a service. The request body is a sweep
// document (YAML or JSON); its SHA-256 is the report's content address, so
// identical sweeps are served from the cache without re-simulating, and
// in-flight duplicates join the queued job. Sweep jobs ride the same
// bounded queue and worker pool as characterization jobs — a full queue is
// 429 + Retry-After here too — and publish their progress (grid points
// done/total) through GET /v1/jobs/{id}. The report YAML is rendered by
// the same encoder as `vani sweep`, byte-identical for the same document.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"vani"
)

// maxSweepBody bounds a sweep upload; the spec parser's own 1 MiB document
// cap rejects anything larger with a clean error.
const maxSweepBody = 2 << 20

// sweepReportID derives the content address of a sweep report from the raw
// document bytes.
func sweepReportID(body []byte) string {
	h := sha256.Sum256(body)
	return "sweep-" + hex.EncodeToString(h[:])
}

// handleSweep is POST /v1/sweep: parse, dedupe against the cache and
// in-flight jobs, then enqueue with backpressure.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("reading sweep document: %v", err))
		return
	}
	sw, err := vani.ParseSweep(body)
	if err != nil {
		if errors.Is(err, vani.ErrBadSpec) {
			httpError(w, http.StatusBadRequest, err.Error())
		} else {
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	repID := sweepReportID(body)
	if _, hit := s.cache.Get(repID); hit {
		s.metrics.SweepCacheHits.Add(1)
		writeJSON(w, http.StatusOK, jobStatus{ReportID: repID, Status: string(jobDone)})
		return
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if j, inflight := s.jobByReport[repID]; inflight {
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, j.status())
		return
	}
	j := &job{
		id:       fmt.Sprintf("j%08d", s.seq.Add(1)),
		reportID: repID,
		sweep:    sw,
		state:    jobQueued,
		done:     make(chan struct{}),
	}
	j.pointsTotal = sw.NumPoints()
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		s.metrics.JobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "job queue full, retry later")
		return
	}
	s.jobs[j.id] = j
	s.jobByReport[repID] = j
	s.mu.Unlock()
	s.metrics.JobsQueued.Add(1)
	s.metrics.SweepJobs.Add(1)

	go func() {
		<-j.done
		s.mu.Lock()
		if s.jobByReport[repID] == j {
			delete(s.jobByReport, repID)
		}
		s.mu.Unlock()
	}()

	writeJSON(w, http.StatusAccepted, j.status())
}

// runSweepJob executes one queued sweep and publishes its report. Workers
// already parallelize across jobs, so each sweep runs its points with the
// engine's own default parallelism; the report bytes are independent of it.
func (s *Server) runSweepJob(j *job) {
	if s.beforeJob != nil {
		s.beforeJob() // test hook: hold workers to fill the queue
	}
	j.setState(jobRunning, "")
	s.metrics.JobsRunning.Add(1)
	defer s.metrics.JobsRunning.Add(-1)

	rep, err := j.sweep.Run(vani.SweepOptions{
		Storage: s.cfg.Storage,
		OnPoint: func(done, total int) {
			s.metrics.SweepRuns.Add(1)
			j.setProgress(done)
		},
	})
	if err != nil {
		j.setState(jobFailed, err.Error())
		s.metrics.JobsFailed.Add(1)
		close(j.done)
		return
	}
	yml := vani.SweepToYAML(rep)
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		j.setState(jobFailed, fmt.Sprintf("encoding sweep report: %v", err))
		s.metrics.JobsFailed.Add(1)
		close(j.done)
		return
	}
	js = append(js, '\n')
	s.cache.Put(&report{ID: j.reportID, YAML: yml, JSON: js})
	s.metrics.JobsDone.Add(1)
	j.setState(jobDone, "")
	close(j.done)
}
