package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vani"
)

const testSweepDoc = `version: 1
name: tiny
base:
  nodes: 2
  ranks_per_node: 2
  scale: 0.01
  seed: 3
grid:
  - param: staging
    values:
      - pfs
      - node-local
workload: cosmoflow
`

// TestSweepEndpoint drives POST /v1/sweep end to end: submit, poll with
// progress, fetch the report — and pins the service's YAML byte-identical
// to the engine the CLI uses, plus the cache hit and metrics on resubmit.
func TestSweepEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := upload(t, ts, "/v1/sweep", []byte(testSweepDoc))
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweep = %d, want 202", code)
	}
	if st.PointsTotal != 2 {
		t.Errorf("points_total = %d, want 2", st.PointsTotal)
	}
	final := pollJob(t, ts, st.ID)
	if final.Status != "done" {
		t.Fatalf("job ended %q (%s)", final.Status, final.Error)
	}
	if final.PointsDone != 2 {
		t.Errorf("points_done = %d, want 2", final.PointsDone)
	}

	resp, err := http.Get(ts.URL + "/v1/reports/" + st.ReportID)
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report = %d, %v", resp.StatusCode, err)
	}

	// The CLI path: same document through the library, same encoder.
	sw, err := vani.ParseSweep([]byte(testSweepDoc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sw.Run(vani.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := vani.SweepToYAML(rep); !bytes.Equal(served, want) {
		t.Errorf("served sweep YAML differs from CLI engine output (%d vs %d bytes)", len(served), len(want))
	}
	if !strings.Contains(string(served), "winner:") {
		t.Error("served YAML has no winner section")
	}

	// Resubmitting the identical document is a cache hit: done immediately.
	code, st2 := upload(t, ts, "/v1/sweep", []byte(testSweepDoc))
	if code != http.StatusOK || st2.Status != "done" || st2.ReportID != st.ReportID {
		t.Errorf("resubmit = %d %+v, want 200 done with same report id", code, st2)
	}

	m := s.Metrics().Snapshot()
	if m.SweepJobs != 1 || m.SweepRuns != 2 || m.SweepCacheHits != 1 {
		t.Errorf("sweep metrics = jobs %d runs %d hits %d, want 1/2/1",
			m.SweepJobs, m.SweepRuns, m.SweepCacheHits)
	}
}

// TestSweepEndpointBadDoc: malformed documents are 400s with the parse
// error, and nothing is queued.
func TestSweepEndpointBadDoc(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, doc := range []string{
		"",
		"not yaml at all: [",
		"version: 1\nname: x\ngrid:\n  - param: bogus\n    values:\n      - 1\nworkload: cm1",
	} {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/yaml", strings.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("doc %q: status %d, want 400 (%s)", doc, resp.StatusCode, e.Error)
		}
	}
	if got := s.Metrics().Snapshot().SweepJobs; got != 0 {
		t.Errorf("sweep_jobs = %d after bad docs, want 0", got)
	}
}
