package server

// Repository-mode (DataDir) tests: uploads survive a daemon restart, the
// fleet endpoint serves byte-identical YAML across restarts, compaction,
// and worker counts, and /metrics exposes the repository gauges.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"vani/internal/trace"
)

func getRaw(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes()
}

func TestDataDirModeSurvivesRestartAndCompaction(t *testing.T) {
	dataDir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8, DataDir: dataDir})
	ts := httptest.NewServer(s.Handler())

	// Three traces of the same workload, one in the legacy v1 format —
	// compaction re-encodes it as v2.2 and the fleet YAML must not notice.
	bodies := [][]byte{
		testTraceBytes(t, trace.FormatV2, 30000),
		testTraceBytes(t, trace.FormatV2, 45000),
		testTraceBytes(t, trace.FormatV1, 20000),
	}
	for _, body := range bodies {
		code, st := upload(t, ts, "/v1/traces", body)
		if code != http.StatusAccepted {
			t.Fatalf("upload: status %d, want 202", code)
		}
		if final := pollJob(t, ts, st.ID); final.Status != string(jobDone) {
			t.Fatalf("job failed: %s", final.Error)
		}
	}

	m := getMetrics(t, ts)
	if m.RepoFiles != 3 || m.RepoShards != 1 {
		t.Fatalf("repo gauges files=%d shards=%d, want 3 files in 1 shard", m.RepoFiles, m.RepoShards)
	}
	bytesBefore := m.RepoBytes

	code, want := getRaw(t, ts, "/fleet/query?workload=synthetic")
	if code != http.StatusOK || len(want) == 0 {
		t.Fatalf("fleet query: status %d, %d bytes", code, len(want))
	}
	if code, got := getRaw(t, ts, "/fleet/query?workload=synthetic&par=3"); code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("fleet YAML varies with par (status %d)", code)
	}

	// Restart: same data dir, fresh process state.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()

	s2 := newTestServer(t, Config{Workers: 2, QueueDepth: 8, DataDir: dataDir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	if m := getMetrics(t, ts2); m.RepoFiles != 3 {
		t.Fatalf("restart lost traces: files=%d, want 3", m.RepoFiles)
	}
	if code, got := getRaw(t, ts2, "/fleet/query?workload=synthetic"); code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("restart changed the fleet YAML (status %d)", code)
	}

	// Forced compaction: packs all three, shrinks the footprint, and the
	// fleet answer stays byte-identical.
	resp, err := http.Post(ts2.URL+"/v1/compact", "", nil)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/compact: %v (status %v)", err, resp)
	}
	resp.Body.Close()

	m2 := getMetrics(t, ts2)
	if m2.RepoCompactions < 1 {
		t.Fatalf("compactions = %d, want >= 1", m2.RepoCompactions)
	}
	if m2.RepoBytes >= bytesBefore {
		t.Errorf("compaction did not shrink the repo: %d -> %d bytes", bytesBefore, m2.RepoBytes)
	}
	if code, got := getRaw(t, ts2, "/fleet/query?workload=synthetic"); code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("compaction changed the fleet YAML (status %d)", code)
	}
}

func TestSpoolModeHasNoFleetEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if code, _ := getRaw(t, ts, "/fleet/query"); code != http.StatusNotFound {
		t.Fatalf("spool mode served /fleet/query with status %d, want 404", code)
	}
}
