//go:build linux || darwin

package server

import (
	"os"
	"syscall"
)

// mapFile maps the file read-only. A nil slice with nil error means the
// file is empty; the caller falls back to a heap read on any error.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size <= 0 {
		return nil, false, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
