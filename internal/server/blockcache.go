package server

// The shared decoded-block cache: VANITRC2 traces vanid serves repeatedly
// keep their bytes mmap-resident and their decoded blocks memoized, so a
// hot trace decodes each block exactly once across all requests — a report
// re-query with a different filter spec performs zero block decodes. The
// cache is trace-granular LRU (an entry is one spooled trace, keyed by its
// content SHA; block handles within it are keyed by block index and
// published first-wins), bounded by a byte budget that charges each entry
// its worst case: the raw bytes, one retained payload copy per block, and
// the fully memoized columns. Entries pinned by in-flight scans (refs > 0)
// never evict mid-read.

import (
	"bytes"
	"container/list"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"vani/internal/trace"
)

// blockCache is the trace-granular LRU of mmap-backed block sources.
type blockCache struct {
	metrics  *Metrics
	capBytes int64

	mu    sync.Mutex
	used  int64
	order *list.List               // front = most recently used
	bySHA map[string]*list.Element // value: *traceEntry
}

func newBlockCache(capBytes int64, m *Metrics) *blockCache {
	return &blockCache{
		metrics:  m,
		capBytes: capBytes,
		order:    list.New(),
		bySHA:    make(map[string]*list.Element),
	}
}

// traceEntry is one cached trace: its raw bytes (mmap-backed where the
// platform allows), a block reader over them, and the first-wins published
// decoded-block handles. For repository pack members the entry maps the
// whole pack and scans a [off, off+size) slice of it — mappings must start
// at the file head (page alignment), slices can start anywhere.
type traceEntry struct {
	sha    string
	raw    []byte // the full mapping (or heap copy)
	data   []byte // the trace's bytes: raw[off : off+size]
	mapped bool
	br     *trace.BlockReader
	blocks []atomic.Pointer[trace.BlockData]
	bytes  int64 // worst-case charge; see newTraceEntry
	refs   int   // in-flight scans; guarded by the cache mutex
}

// newTraceEntry maps the stored trace and parses its footer. off/size
// select a pack member's section; size 0 means the whole file. The
// entry's byte charge is the worst case it can grow to: the trace bytes
// twice (raw plus one retained heap payload copy per block — payloads
// together are at most the section size) and every block's columns
// memoized.
func newTraceEntry(sha, path string, off, size int64) (*traceEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	raw, mapped, err := mapFile(f, info.Size())
	if err != nil || raw == nil {
		// Mapping unavailable (or an empty file): fall back to the heap.
		if raw, err = os.ReadFile(path); err != nil {
			return nil, err
		}
		mapped = false
	}
	if size == 0 {
		size = int64(len(raw)) - off
	}
	if off < 0 || size < 0 || off+size > int64(len(raw)) {
		if mapped {
			unmapFile(raw) //nolint:errcheck
		}
		return nil, fmt.Errorf("trace section [%d, %d) outside file of %d bytes", off, off+size, len(raw))
	}
	e := &traceEntry{sha: sha, raw: raw, data: raw[off : off+size], mapped: mapped}
	e.br, err = trace.NewBlockReader(bytes.NewReader(e.data), size)
	if err != nil {
		e.drop()
		return nil, err
	}
	e.blocks = make([]atomic.Pointer[trace.BlockData], e.br.NumBlocks())
	e.bytes = 2*size + int64(e.br.NumEvents())*trace.MemoRowBytes
	return e, nil
}

// drop releases the entry's raw bytes. Callers must guarantee no reader
// still touches them (refs == 0, or the entry never published).
func (e *traceEntry) drop() {
	if e.mapped {
		unmapFile(e.raw) //nolint:errcheck // nothing to do about munmap failure
	}
	e.raw, e.data, e.br = nil, nil, nil
}

// acquire returns a pinned block source for the trace, building and
// inserting an entry on miss. off/size locate the trace within the file
// (pack members); entries stay keyed by content sha, so the same trace
// hits the cache whether it is loose or packed. Release with release when
// the scan is done.
func (bc *blockCache) acquire(sha, path string, off, size int64) (*cachedSource, error) {
	bc.mu.Lock()
	if el, ok := bc.bySHA[sha]; ok {
		bc.order.MoveToFront(el)
		e := el.Value.(*traceEntry)
		e.refs++
		bc.mu.Unlock()
		return &cachedSource{e: e, m: bc.metrics}, nil
	}
	bc.mu.Unlock()

	// Build outside the lock: mapping and footer parsing can be slow.
	e, err := newTraceEntry(sha, path, off, size)
	if err != nil {
		return nil, err
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if el, ok := bc.bySHA[sha]; ok {
		e.drop() // lost the build race; use the winner
		bc.order.MoveToFront(el)
		winner := el.Value.(*traceEntry)
		winner.refs++
		return &cachedSource{e: winner, m: bc.metrics}, nil
	}
	bc.evictFor(e.bytes)
	e.refs = 1
	bc.bySHA[sha] = bc.order.PushFront(e)
	bc.used += e.bytes
	bc.metrics.BlockCacheBytes.Store(bc.used)
	return &cachedSource{e: e, m: bc.metrics}, nil
}

// release unpins one scan's hold on the source's entry.
func (bc *blockCache) release(cs *cachedSource) {
	bc.mu.Lock()
	cs.e.refs--
	bc.mu.Unlock()
}

// evictFor drops least-recently-used unpinned entries until need bytes fit
// in the budget (or nothing evictable remains — an oversized active trace
// is served anyway rather than refused). Caller holds the mutex.
func (bc *blockCache) evictFor(need int64) {
	for el := bc.order.Back(); el != nil && bc.used+need > bc.capBytes; {
		prev := el.Prev()
		e := el.Value.(*traceEntry)
		if e.refs == 0 {
			bc.order.Remove(el)
			delete(bc.bySHA, e.sha)
			bc.used -= e.bytes
			e.drop()
		}
		el = prev
	}
	bc.metrics.BlockCacheBytes.Store(bc.used)
}

// Len reports the number of cached traces (tests).
func (bc *blockCache) Len() int {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	return bc.order.Len()
}

// cachedSource adapts a pinned cache entry to trace.BlockSource. ReadBlock
// publishes decoded-block handles first-wins and enables each block's
// column memo, so every block of a hot trace is read and decoded at most
// once no matter how many requests scan it.
type cachedSource struct {
	e *traceEntry
	m *Metrics
}

func (cs *cachedSource) Header() *trace.Trace          { return cs.e.br.Header() }
func (cs *cachedSource) NumBlocks() int                { return cs.e.br.NumBlocks() }
func (cs *cachedSource) BlockEvents() int              { return cs.e.br.BlockEvents() }
func (cs *cachedSource) NumEvents() uint64             { return cs.e.br.NumEvents() }
func (cs *cachedSource) BlockAt(k int) trace.BlockInfo { return cs.e.br.BlockAt(k) }

func (cs *cachedSource) ReadBlock(k int) (*trace.BlockData, error) {
	if bd := cs.e.blocks[k].Load(); bd != nil {
		cs.m.BlockCacheHits.Add(1)
		return bd, nil
	}
	cs.m.BlockCacheMisses.Add(1)
	bd, err := cs.e.br.ReadBlock(k)
	if err != nil {
		return nil, err
	}
	bd.EnableMemo()
	if !cs.e.blocks[k].CompareAndSwap(nil, bd) {
		bd = cs.e.blocks[k].Load() // concurrent reader won the publish
	}
	return bd, nil
}
