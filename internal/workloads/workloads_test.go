package workloads

import (
	"testing"
	"time"

	"vani/internal/trace"
)

// tinySpec returns a fast configuration for tests: 4 nodes, small scale.
func tinySpec(w Workload, scale float64) Spec {
	s := w.DefaultSpec()
	s.Nodes = 4
	if s.RanksPerNode > 8 {
		s.RanksPerNode = 8
	}
	s.Scale = scale
	return s
}

func mustRun(t *testing.T, w Workload, spec Spec) *Result {
	t.Helper()
	res, err := Run(w, spec)
	if err != nil {
		t.Fatalf("Run(%s): %v", w.Name(), err)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"cm1", "cosmoflow", "hacc", "ior", "jag", "montage-mpi", "montage-pegasus"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
	if len(All()) != len(want) {
		t.Error("All() incomplete")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	w := NewHACC()
	for _, scale := range []float64{0, -1, 1.5} {
		s := tinySpec(w, scale)
		if _, err := Run(w, s); err == nil {
			t.Errorf("scale %v accepted", scale)
		}
	}
}

func TestRunRejectsBadJob(t *testing.T) {
	w := NewHACC()
	s := tinySpec(w, 0.01)
	s.Nodes = 0
	if _, err := Run(w, s); err == nil {
		t.Error("zero nodes accepted")
	}
}

// perWorkload invariants checked for every exemplar.
func checkCommonInvariants(t *testing.T, w Workload, res *Result) {
	t.Helper()
	tr := res.Trace
	if len(tr.Events) == 0 {
		t.Fatalf("%s: empty trace", w.Name())
	}
	if res.Runtime <= 0 {
		t.Errorf("%s: runtime %v", w.Name(), res.Runtime)
	}
	if tr.Meta.Workload != w.Name() {
		t.Errorf("%s: meta workload %q", w.Name(), tr.Meta.Workload)
	}
	if tr.JobRuntime() > res.Runtime {
		t.Errorf("%s: events end (%v) after job end (%v)", w.Name(), tr.JobRuntime(), res.Runtime)
	}
	ranks := map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.End < ev.Start {
			t.Fatalf("%s: event ends before start: %+v", w.Name(), ev)
		}
		if ev.Op.IsData() && ev.Size <= 0 {
			t.Fatalf("%s: data op with size %d", w.Name(), ev.Size)
		}
		if int(ev.Node) >= res.Spec.Nodes || ev.Node < 0 {
			t.Fatalf("%s: event on node %d of %d", w.Name(), ev.Node, res.Spec.Nodes)
		}
		ranks[ev.Rank] = true
	}
	if len(ranks) < res.Job.Ranks()/2 {
		t.Errorf("%s: only %d of %d ranks traced", w.Name(), len(ranks), res.Job.Ranks())
	}
	if len(tr.Samples) == 0 {
		t.Errorf("%s: no dataset value sample attached", w.Name())
	}
}

func countByOp(tr *trace.Trace) (data, meta int) {
	for _, ev := range tr.Events {
		switch {
		case ev.Op.IsData():
			data++
		case ev.Op.IsMeta():
			meta++
		}
	}
	return
}

func bytesByOp(tr *trace.Trace, lv trace.Level) (read, written int64) {
	for _, ev := range tr.Events {
		if ev.Level != lv {
			continue
		}
		switch ev.Op {
		case trace.OpRead:
			read += ev.Size
		case trace.OpWrite:
			written += ev.Size
		}
	}
	return
}

func TestCM1Shape(t *testing.T) {
	w := NewCM1()
	res := mustRun(t, w, tinySpec(w, 0.05))
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	// Only rank 0 writes simulation data; node leaders open/close.
	writers := map[int32]bool{}
	openers := map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.Level != trace.LevelPosix || ev.File < 0 {
			continue
		}
		isStep := tr.Files[ev.File].Path[:17] == "/p/gpfs1/cm1/out/"
		if !isStep {
			continue
		}
		if ev.Op == trace.OpWrite {
			writers[ev.Rank] = true
		}
		if ev.Op == trace.OpOpen {
			openers[ev.Rank] = true
		}
	}
	if len(writers) != 1 || !writers[0] {
		t.Errorf("step-file writers = %v, want {0}", writers)
	}
	if len(openers) != res.Spec.Nodes {
		t.Errorf("step-file openers = %d ranks, want one per node (%d)", len(openers), res.Spec.Nodes)
	}

	// Writes are 4KB, reads are 16MB.
	for _, ev := range tr.Events {
		if ev.Level == trace.LevelPosix && ev.Op == trace.OpWrite && ev.Size > 4096 {
			t.Fatalf("CM1 write of %d bytes, want <=4KB", ev.Size)
		}
	}
}

func TestCM1ComputeAndIOAlternate(t *testing.T) {
	w := NewCM1()
	res := mustRun(t, w, tinySpec(w, 0.03))
	var compute, io time.Duration
	for _, ev := range res.Trace.Events {
		if ev.Op == trace.OpCompute {
			compute += ev.Duration()
		} else if ev.Op.IsIO() && ev.Rank == 0 {
			io += ev.Duration()
		}
	}
	if compute == 0 || io == 0 {
		t.Fatal("missing compute or I/O phases")
	}
}

func TestHACCShape(t *testing.T) {
	w := NewHACC()
	spec := tinySpec(w, 0.02)
	res := mustRun(t, w, spec)
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	// Pure FPP: every data file is touched by exactly one rank.
	fileRanks := map[int32]map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.File < 0 || !ev.Op.IsIO() {
			continue
		}
		if fileRanks[ev.File] == nil {
			fileRanks[ev.File] = map[int32]bool{}
		}
		fileRanks[ev.File][ev.Rank] = true
	}
	for f, rs := range fileRanks {
		if len(rs) != 1 {
			t.Errorf("HACC file %s accessed by %d ranks, want 1", tr.FilePath(f), len(rs))
		}
	}
	if len(fileRanks) != res.Job.Ranks() {
		t.Errorf("HACC files = %d, want one per rank (%d)", len(fileRanks), res.Job.Ranks())
	}

	// Checkpoint written then read back: bytes match.
	read, written := bytesByOp(tr, trace.LevelPosix)
	if read != written {
		t.Errorf("HACC read %d != written %d (checkpoint+restart must balance)", read, written)
	}
}

func TestHACCBandwidthVariance(t *testing.T) {
	// Contention must make per-rank I/O times differ (Figure 2c). The
	// client cache is disabled so writes hit the PFS directly; at full
	// scale the cache overflows and the same contention appears.
	w := NewHACC()
	spec := tinySpec(w, 0.02)
	spec.Storage.CacheEnabled = false
	res := mustRun(t, w, spec)
	perRank := map[int32]time.Duration{}
	for _, ev := range res.Trace.Events {
		if ev.Level == trace.LevelPosix && ev.Op == trace.OpWrite {
			perRank[ev.Rank] += ev.Duration()
		}
	}
	var min, max time.Duration
	for _, d := range perRank {
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max == min {
		t.Error("all ranks saw identical write time; contention model inert")
	}
}

func TestCosmoFlowShape(t *testing.T) {
	w := NewCosmoFlow()
	w.GPUPerFile = 100 * time.Millisecond // shrink compute for test speed
	spec := tinySpec(w, 0.002)            // ~100 files
	res := mustRun(t, w, spec)
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	data, meta := countByOp(tr)
	if meta <= data {
		t.Errorf("CosmoFlow meta ops (%d) not dominant over data (%d)", meta, data)
	}
	// HDF5 level present.
	hasApp := false
	for _, ev := range tr.Events {
		if ev.Level == trace.LevelApp && ev.Op == trace.OpRead {
			hasApp = true
			break
		}
	}
	if !hasApp {
		t.Error("no app-level HDF5 reads traced")
	}
}

func TestCosmoFlowOptimizedFaster(t *testing.T) {
	w := NewCosmoFlow()
	w.GPUPerFile = 0 // isolate I/O
	base := tinySpec(w, 0.002)
	// Both runs move the whole dataset over the client NIC once; uncap it
	// so the metadata difference (the paper's bottleneck) is visible at
	// this tiny test scale.
	base.Storage.NodeNICBW = 0
	opt := base
	opt.Optimized = true
	rb := mustRun(t, w, base)
	ro := mustRun(t, w, opt)
	if ro.Runtime >= rb.Runtime {
		t.Errorf("optimized (%v) not faster than baseline (%v)", ro.Runtime, rb.Runtime)
	}
}

func TestJAGShape(t *testing.T) {
	w := NewJAG()
	w.Epochs = 5
	w.ComputePerEpoch = 100 * time.Millisecond
	res := mustRun(t, w, tinySpec(w, 0.02))
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	// Single shared dataset file read by all ranks.
	readers := map[int32]bool{}
	for _, ev := range tr.Events {
		if ev.File >= 0 && tr.Files[ev.File].Path == jagDataPath && ev.Op == trace.OpRead {
			readers[ev.Rank] = true
		}
	}
	if len(readers) != res.Job.Ranks() {
		t.Errorf("JAG dataset read by %d ranks, want all %d", len(readers), res.Job.Ranks())
	}

	// Two I/O phases: reads at start and at end, compute between.
	var firstIOEnd, lastIOStart time.Duration
	var maxComputeEnd time.Duration
	for _, ev := range tr.Events {
		if ev.Op == trace.OpGPUCompute && ev.End > maxComputeEnd {
			maxComputeEnd = ev.End
		}
	}
	for _, ev := range tr.Events {
		if ev.Op == trace.OpRead && ev.File >= 0 && tr.Files[ev.File].Path == jagDataPath {
			if firstIOEnd == 0 || ev.End < firstIOEnd {
				firstIOEnd = ev.End
			}
			if ev.Start > lastIOStart {
				lastIOStart = ev.Start
			}
		}
	}
	if lastIOStart <= maxComputeEnd-2*w.ComputePerEpoch {
		t.Error("no validation I/O phase after training")
	}
}

func TestMontageMPIShape(t *testing.T) {
	w := NewMontageMPI()
	res := mustRun(t, w, tinySpec(w, 0.1))
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	// Five applications.
	apps := map[string]bool{}
	for _, a := range tr.Apps {
		apps[a] = true
	}
	for _, want := range []string{"mProject", "mImgtbl", "mAddMPI", "mShrink", "mViewer"} {
		if !apps[want] {
			t.Errorf("app %s missing from trace (have %v)", want, tr.Apps)
		}
	}

	// Node leaders do far more I/O ops than non-leaders.
	perRank := map[int32]int{}
	for _, ev := range tr.Events {
		if ev.Op.IsIO() {
			perRank[ev.Rank]++
		}
	}
	leader, nonLeader := perRank[0], perRank[1]
	if leader < 5*nonLeader {
		t.Errorf("leader ops (%d) not >> non-leader ops (%d)", leader, nonLeader)
	}
}

func TestMontageMPIOptimizedFaster(t *testing.T) {
	w := NewMontageMPI()
	// Remove compute so the I/O difference dominates.
	w.ProjectCompute, w.AddCompute, w.ShrinkCompute, w.ViewerCompute = 0, 0, 0, 0
	base := tinySpec(w, 0.1)
	opt := base
	opt.Optimized = true
	rb := mustRun(t, w, base)
	ro := mustRun(t, w, opt)
	if ro.Runtime >= rb.Runtime {
		t.Errorf("optimized (%v) not faster than baseline (%v)", ro.Runtime, rb.Runtime)
	}
	// Optimized run must route intermediate traffic to node-local storage.
	if ro.Sys.Stats[1].BytesWritten == 0 { // TargetNodeLocal
		t.Error("optimized run wrote nothing to node-local storage")
	}
}

func TestMontagePegasusShape(t *testing.T) {
	w := NewMontagePegasus()
	res := mustRun(t, w, tinySpec(w, 0.02))
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	// Nine kernels.
	apps := map[string]bool{}
	for _, a := range tr.Apps {
		apps[a] = true
	}
	for _, want := range []string{"mProject", "mImgTbl", "mDiff", "mFitplane",
		"mConcatFit", "mBgModel", "mBackground", "mAdd", "mViewer"} {
		if !apps[want] {
			t.Errorf("kernel %s missing (have %v)", want, tr.Apps)
		}
	}

	// mViewer's two large requests.
	bigReads := 0
	for _, ev := range tr.Events {
		if ev.Level == trace.LevelPosix && ev.Op == trace.OpRead && ev.Size > 16<<20 {
			bigReads++
		}
	}
	if bigReads != 2 {
		t.Errorf("large (>16MB) reads = %d, want 2 (mViewer)", bigReads)
	}
}

func TestMontagePegasusDiffDominates(t *testing.T) {
	w := NewMontagePegasus()
	res := mustRun(t, w, tinySpec(w, 0.02))
	tr := res.Trace
	byApp := map[string]int64{}
	for _, ev := range tr.Events {
		if ev.Level == trace.LevelMiddleware && ev.Op == trace.OpRead {
			byApp[tr.AppName(ev.App)] += ev.Size
		}
	}
	var total int64
	for _, b := range byApp {
		total += b
	}
	if total == 0 || byApp["mDiff"]*2 < total {
		t.Errorf("mDiff reads %d of %d bytes, want majority", byApp["mDiff"], total)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	w := NewHACC()
	spec := tinySpec(w, 0.01)
	a := mustRun(t, w, spec)
	b := mustRun(t, w, spec)
	if a.Runtime != b.Runtime {
		t.Fatalf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
	}
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestTraceOverheadAddsRuntime(t *testing.T) {
	w := NewHACC()
	spec := tinySpec(w, 0.01)
	base := mustRun(t, w, spec)
	spec.TraceOverhead = 50 * time.Microsecond
	traced := mustRun(t, w, spec)
	if traced.Runtime <= base.Runtime {
		t.Errorf("overhead run (%v) not slower than base (%v)", traced.Runtime, base.Runtime)
	}
	if traced.Trace.Meta.TraceOverhead == 0 {
		t.Error("trace overhead not recorded in meta")
	}
}

func TestTracingDisabledProducesNoEvents(t *testing.T) {
	w := NewHACC()
	spec := tinySpec(w, 0.01)
	spec.TraceEnabled = false
	res := mustRun(t, w, spec)
	if len(res.Trace.Events) != 0 {
		t.Errorf("disabled tracer captured %d events", len(res.Trace.Events))
	}
	if res.Runtime <= 0 {
		t.Error("untraced run has no runtime")
	}
}

func TestIORShape(t *testing.T) {
	w := NewIOR()
	spec := tinySpec(w, 0.01)
	spec.RanksPerNode = 1
	res := mustRun(t, w, spec)
	checkCommonInvariants(t, w, res)
	tr := res.Trace

	read, written := bytesByOp(tr, trace.LevelPosix)
	if read != written || written == 0 {
		t.Errorf("IOR read %d / written %d, want equal nonzero", read, written)
	}
	// All transfers are TransferSize.
	for _, ev := range tr.Events {
		if ev.Op.IsData() && ev.Size != w.TransferSize {
			t.Errorf("transfer of %d bytes, want %d", ev.Size, w.TransferSize)
		}
	}
	// fsync traced.
	syncs := 0
	for _, ev := range tr.Events {
		if ev.Op == trace.OpSync {
			syncs++
		}
	}
	if syncs != res.Job.Ranks() {
		t.Errorf("syncs = %d, want one per rank", syncs)
	}
}

func TestIORSharedFileMode(t *testing.T) {
	w := NewIOR()
	w.SharedFile = true
	w.ReadBack = false
	spec := tinySpec(w, 0.01)
	spec.RanksPerNode = 2
	res := mustRun(t, w, spec)
	files := map[int32]bool{}
	for _, ev := range res.Trace.Events {
		if ev.File >= 0 {
			files[ev.File] = true
		}
	}
	if len(files) != 1 {
		t.Errorf("shared-file IOR touched %d files, want 1", len(files))
	}
	// Ranks write disjoint regions at rank*perRank offsets.
	offsets := map[int64]int32{}
	for _, ev := range res.Trace.Events {
		if ev.Op == trace.OpWrite {
			if prev, dup := offsets[ev.Offset]; dup && prev != ev.Rank {
				t.Fatalf("offset %d written by ranks %d and %d", ev.Offset, prev, ev.Rank)
			}
			offsets[ev.Offset] = ev.Rank
		}
	}
}
