package workloads

import (
	"fmt"
	"time"

	"vani/internal/iface"
	"vani/internal/sim"
	"vani/internal/storage"
	"vani/internal/workflow"
)

// MontagePegasus models the Pegasus-managed galactic-plane mosaic workflow
// of Section IV-A6 / Figure 6:
//
//   - Nine Montage kernels composed into a DAG, executed by a
//     pegasus-mpi-cluster-style scheduler over 1280 worker slots on 32
//     nodes; ~6000 task processes, the bulk of them mDiff.
//   - mDiff dominates I/O (~60% of the 139GB total), reading overlap
//     regions of projected images with 64KB transfers; intermediate and
//     table files are created and accessed with <4KB transfers.
//   - mViewer issues two large (>16MB) requests and produces the 1.5GB
//     mosaic images.
type MontagePegasus struct {
	ProjectTasks int   // mProject tasks (each consumes 2 FITS + headers)
	DiffTasks    int   // mDiff tasks (the 5209 of the paper)
	AddTasks     int   // mAdd tile tasks
	FITSSize     int64 //
	HdrsPerProj  int   // small header inputs read per mProject task
	ProjSize     int64 // projected image size
	DiffRead     int64 // bytes read from each of the 2 parents per mDiff
	DiffSize     int64 // diff file size (only boundary overlaps materialize)
	FitSize      int64 //
	CorrSize     int64 // corrected image size
	TileSize     int64 // mosaic tile size
	PNGBytes     int64 // mViewer output total

	BigGranule   int64 // 64KB transfers
	SmallGranule int64 // <4KB transfers

	ProjectCompute time.Duration
	DiffCompute    time.Duration
	FitCompute     time.Duration
	ConcatCompute  time.Duration
	BgModelCompute time.Duration
	BgCompute      time.Duration
	AddCompute     time.Duration
	ViewerCompute  time.Duration
}

// NewMontagePegasus returns the paper-scale configuration (10 degrees of
// galactic plane, 5x5 degree tiles with 1 degree overlap).
func NewMontagePegasus() *MontagePegasus {
	return &MontagePegasus{
		ProjectTasks: 480,
		DiffTasks:    5209,
		AddTasks:     16,
		FITSSize:     1536 * storage.KiB,
		HdrsPerProj:  8,
		ProjSize:     29 * storage.MiB,
		DiffRead:     8 * storage.MiB,
		DiffSize:     1 * storage.MiB,
		FitSize:      4 * storage.KiB,
		CorrSize:     15 * storage.MiB,
		TileSize:     120 * storage.MiB,
		PNGBytes:     1536 * storage.MiB,

		BigGranule:   64 * storage.KiB,
		SmallGranule: 4 * storage.KiB,

		ProjectCompute: 25 * time.Second,
		DiffCompute:    2 * time.Second,
		FitCompute:     time.Second,
		ConcatCompute:  60 * time.Second,
		BgModelCompute: 300 * time.Second,
		BgCompute:      150 * time.Second,
		AddCompute:     100 * time.Second,
		ViewerCompute:  100 * time.Second,
	}
}

// Name implements Workload.
func (w *MontagePegasus) Name() string { return "montage-pegasus" }

// AppName implements Workload.
func (w *MontagePegasus) AppName() string { return "mDiff" }

// DefaultSpec implements Workload: 12h limit (Table II).
func (w *MontagePegasus) DefaultSpec() Spec {
	s := DefaultSpec()
	s.TimeLimit = 12 * time.Hour
	s.Iface.StdioPerOpCPU = 5 * time.Microsecond // libc cost per tiny access
	return s
}

const pegBase = "/p/gpfs1/montage-pegasus"

func (w *MontagePegasus) fitsPath(i int) string {
	return fmt.Sprintf("%s/input/plane_%04d.fits", pegBase, i)
}

func (w *MontagePegasus) hdrPath(i int) string {
	return fmt.Sprintf("%s/input/hdr_%04d.hdr", pegBase, i)
}

func (w *MontagePegasus) projPath(i int) string {
	return fmt.Sprintf("%s/work/proj_%04d.fits", pegBase, i)
}

// Setup stages the survey inputs: FITS images and the small header/
// calibration files that make up the 4778 initial-input files.
func (w *MontagePegasus) Setup(env *Env) {
	nProj := scaleN(w.ProjectTasks, env.Spec.Scale, 1)
	for i := 0; i < 2*nProj; i++ {
		env.Sys.Materialize(0, w.fitsPath(i), w.FITSSize)
	}
	for i := 0; i < nProj*w.HdrsPerProj; i++ {
		env.Sys.Materialize(0, w.hdrPath(i), 2*storage.KiB)
	}
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Uniform(0, 65535)
	}
	env.Tr.AddSample("montage-pegasus-pixels", sample)
}

// Spawn implements Workload: builds the nine-kernel DAG and hands it to
// the pegasus-mpi-cluster scheduler (1280 slots).
func (w *MontagePegasus) Spawn(env *Env) {
	spec := env.Spec
	nProj := scaleN(w.ProjectTasks, spec.Scale, 1)
	nDiff := scaleN(w.DiffTasks, spec.Scale, 1)
	nAdd := scaleN(w.AddTasks, spec.Scale, 1)
	slots := env.Job.Ranks()
	d := workflow.NewDAG()

	// client builds a per-task interface client. Every task instance is its
	// own OS process under pegasus-mpi-cluster, so each gets a unique rank
	// (the paper counts 6039 spawned processes); placement follows the
	// worker slot the scheduler assigned.
	taskSeq := 0
	newRank := func() int { r := taskSeq; taskSeq++; return r }
	client := func(app string, rank, slot int) *iface.Client {
		return env.ClientAt(app, rank, slot/spec.RanksPerNode)
	}

	// mProject: read 2 FITS + headers, write one projected image (64KB).
	projNames := make([]string, nProj)
	for i := 0; i < nProj; i++ {
		i := i
		name := fmt.Sprintf("mProject_%04d", i)
		projNames[i] = name
		rank := newRank()
		d.MustAdd(&workflow.Task{
			Name: name, App: "mProject",
			Run: func(p *sim.Proc, slot int) {
				cl := client("mProject", rank, slot)
				for h := 0; h < w.HdrsPerProj; h++ {
					readWhole(cl, p, w.hdrPath(i*w.HdrsPerProj+h), 2*storage.KiB, 2*storage.KiB)
				}
				for f := 0; f < 2; f++ {
					path := w.fitsPath(2*i + f)
					cl.DescribeFile(path, "fits", 2, "int")
					readWhole(cl, p, path, w.FITSSize, w.BigGranule)
				}
				cl.Compute(p, w.ProjectCompute)
				cl.DescribeFile(w.projPath(i), "fits", 2, "int")
				writeWhole(cl, p, w.projPath(i), w.ProjSize, w.BigGranule)
			},
		})
	}

	// mImgTbl: stat every projected image, write the image table.
	imgTblRank := newRank()
	d.MustAdd(&workflow.Task{
		Name: "mImgTbl", App: "mImgTbl", Deps: projNames,
		Run: func(p *sim.Proc, slot int) {
			cl := client("mImgTbl", imgTblRank, slot)
			for i := 0; i < nProj; i++ {
				if _, err := cl.PosixStat(p, w.projPath(i)); err != nil {
					panic(err)
				}
			}
			writeWhole(cl, p, pegBase+"/work/pimages.tbl", 256*storage.KiB, w.SmallGranule)
		},
	})

	// mDiff: read the overlap region of two projected parents; only the
	// first nProj diffs (tile boundaries) materialize files.
	fitDeps := make([]string, 0, nProj)
	for j := 0; j < nDiff; j++ {
		j := j
		a := j % nProj
		b := (j + 1 + j/nProj) % nProj
		name := fmt.Sprintf("mDiff_%05d", j)
		writes := j < nProj
		diffRank := newRank()
		d.MustAdd(&workflow.Task{
			Name: name, App: "mDiff",
			Deps: []string{projNames[a], projNames[b]},
			Run: func(p *sim.Proc, slot int) {
				cl := client("mDiff", diffRank, slot)
				readPart(cl, p, w.projPath(a), w.DiffRead, w.BigGranule)
				readPart(cl, p, w.projPath(b), w.DiffRead, w.BigGranule)
				cl.Compute(p, w.DiffCompute)
				if writes {
					writeWhole(cl, p, fmt.Sprintf("%s/work/diff_%05d.fits", pegBase, j), w.DiffSize, w.SmallGranule)
				}
			},
		})
		if writes {
			fit := fmt.Sprintf("mFitplane_%05d", j)
			fitDeps = append(fitDeps, fit)
			fitRank := newRank()
			d.MustAdd(&workflow.Task{
				Name: fit, App: "mFitplane", Deps: []string{name},
				Run: func(p *sim.Proc, slot int) {
					cl := client("mFitplane", fitRank, slot)
					readWhole(cl, p, fmt.Sprintf("%s/work/diff_%05d.fits", pegBase, j), w.DiffSize, w.SmallGranule)
					cl.Compute(p, w.FitCompute)
					writeWhole(cl, p, fmt.Sprintf("%s/work/fit_%05d.tbl", pegBase, j), w.FitSize, w.SmallGranule)
				},
			})
		}
	}

	// mConcatFit: gather all fit tables into one.
	concatRank := newRank()
	d.MustAdd(&workflow.Task{
		Name: "mConcatFit", App: "mConcatFit", Deps: fitDeps,
		Run: func(p *sim.Proc, slot int) {
			cl := client("mConcatFit", concatRank, slot)
			for i := 0; i < len(fitDeps); i++ {
				readWhole(cl, p, fmt.Sprintf("%s/work/fit_%05d.tbl", pegBase, i), w.FitSize, w.SmallGranule)
			}
			cl.Compute(p, w.ConcatCompute)
			writeWhole(cl, p, pegBase+"/work/fits.tbl", 20*storage.MiB, w.BigGranule)
		},
	})

	// mBgModel: global background solution.
	bgModelRank := newRank()
	d.MustAdd(&workflow.Task{
		Name: "mBgModel", App: "mBgModel", Deps: []string{"mConcatFit", "mImgTbl"},
		Run: func(p *sim.Proc, slot int) {
			cl := client("mBgModel", bgModelRank, slot)
			readWhole(cl, p, pegBase+"/work/fits.tbl", 20*storage.MiB, w.BigGranule)
			cl.Compute(p, w.BgModelCompute)
			writeWhole(cl, p, pegBase+"/work/corrections.tbl", 2*storage.MiB, w.SmallGranule)
		},
	})

	// mBackground: apply corrections per projected image.
	bgNames := make([]string, nProj)
	for i := 0; i < nProj; i++ {
		i := i
		name := fmt.Sprintf("mBackground_%04d", i)
		bgNames[i] = name
		bgRank := newRank()
		d.MustAdd(&workflow.Task{
			Name: name, App: "mBackground",
			Deps: []string{projNames[i], "mBgModel"},
			Run: func(p *sim.Proc, slot int) {
				cl := client("mBackground", bgRank, slot)
				readPart(cl, p, w.projPath(i), w.CorrSize, w.BigGranule)
				readWhole(cl, p, pegBase+"/work/corrections.tbl", 2*storage.MiB, w.SmallGranule)
				cl.Compute(p, w.BgCompute)
				writeWhole(cl, p, fmt.Sprintf("%s/work/corr_%04d.fits", pegBase, i), w.CorrSize, w.BigGranule)
			},
		})
	}

	// mAdd: coadd corrected images into mosaic tiles.
	addNames := make([]string, nAdd)
	perTile := nProj / nAdd
	if perTile == 0 {
		perTile = 1
	}
	for t := 0; t < nAdd; t++ {
		t := t
		name := fmt.Sprintf("mAdd_%02d", t)
		addNames[t] = name
		deps := []string{}
		for i := t * perTile; i < (t+1)*perTile && i < nProj; i++ {
			deps = append(deps, bgNames[i])
		}
		if len(deps) == 0 {
			deps = append(deps, bgNames[nProj-1])
		}
		addRank := newRank()
		d.MustAdd(&workflow.Task{
			Name: name, App: "mAdd", Deps: deps,
			Run: func(p *sim.Proc, slot int) {
				cl := client("mAdd", addRank, slot)
				for i := t * perTile; i < (t+1)*perTile && i < nProj; i++ {
					readWhole(cl, p, fmt.Sprintf("%s/work/corr_%04d.fits", pegBase, i), w.CorrSize, w.BigGranule)
				}
				cl.Compute(p, w.AddCompute)
				writeWhole(cl, p, fmt.Sprintf("%s/work/tile_%02d.fits", pegBase, t), w.TileSize, storage.MiB)
			},
		})
	}

	// mViewer: two large (>16MB) reads over the tiles, then the mosaic
	// images (1.5GB) written large.
	viewerRank := newRank()
	d.MustAdd(&workflow.Task{
		Name: "mViewer", App: "mViewer", Deps: addNames,
		Run: func(p *sim.Proc, slot int) {
			cl := client("mViewer", viewerRank, slot)
			tile0 := fmt.Sprintf("%s/work/tile_%02d.fits", pegBase, 0)
			f, err := cl.PosixOpen(p, tile0, false)
			if err != nil {
				panic(err)
			}
			big := scaleBytes(64*storage.MiB, spec.Scale, 16*storage.MiB+1)
			if sz, _ := env.Sys.FileSize(slot/spec.RanksPerNode, tile0); big > sz {
				big = sz
			}
			for r := 0; r < 2; r++ { // the paper's two >16MB requests
				if err := f.ReadAt(p, 0, big, false); err != nil {
					panic(err)
				}
			}
			if err := f.Close(p); err != nil {
				panic(err)
			}
			cl.Compute(p, w.ViewerCompute)
			out := pegBase + "/mosaic_images.png"
			cl.DescribeFile(out, "png", 2, "int")
			writeWhole(cl, p, out, scaleBytes(w.PNGBytes, spec.Scale, storage.MiB), storage.MiB)
		},
	})

	if _, err := workflow.Execute(env.E, d, slots); err != nil {
		panic(err)
	}
}

// readWhole opens, fully reads, and closes a file through STDIO.
func readWhole(cl *iface.Client, p *sim.Proc, path string, size, granule int64) {
	f, err := cl.StdioOpen(p, path, 'r')
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < size; off += granule {
		n := granule
		if off+n > size {
			n = size - off
		}
		if err := f.Read(p, n); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
}

// readPart reads the first part bytes of a file through STDIO.
func readPart(cl *iface.Client, p *sim.Proc, path string, part, granule int64) {
	readWhole(cl, p, path, part, granule)
}

// writeWhole creates and writes a file through STDIO.
func writeWhole(cl *iface.Client, p *sim.Proc, path string, size, granule int64) {
	f, err := cl.StdioOpen(p, path, 'w')
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < size; off += granule {
		n := granule
		if off+n > size {
			n = size - off
		}
		if err := f.Write(p, n); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
}
