package workloads

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
)

// CosmoFlow models the deep-learning workload of Section IV-A3 / Figure 3
// and the Section V-A case study:
//
//   - 128 ranks (4 per node, one per GPU) on 32 nodes; I/O on CPU while
//     training runs on GPU.
//   - The 1.5TB dataset is ~50K HDF5 files of 32MB each, read shared via
//     HDF5 over MPI-IO with ~4MB dataset accesses. The files are not
//     chunked, so every access multiplies metadata operations; combined
//     with collective synchronization on GPFS this makes 98% of I/O time
//     metadata ("small accesses achieve 100KB/s-3.5MB/s").
//   - Periodic checkpoints write 20MB in 40KB operations.
//
// With Spec.Optimized the paper's reconfiguration applies: an
// MPIFileUtils-style parallel preload stages each node's shard of the
// dataset into /dev/shm, and training reads locally with node-scoped
// MPI-IO (communicator of 4 instead of 128), which is Figure 7's 2.2-4.6x.
type CosmoFlow struct {
	Files       int           // HDF5 sample files
	FileSize    int64         // bytes per file
	ReadGranule int64         // dataset access size
	GPUPerFile  time.Duration // training compute per sample file
	Checkpoints int           // checkpoint episodes (rank 0)
	CkptBytes   int64         // bytes per checkpoint
	CkptGranule int64         // checkpoint write size
}

// NewCosmoFlow returns the paper-scale configuration (dataset
// "2019_05_4parE": ~50K samples of 32MB).
func NewCosmoFlow() *CosmoFlow {
	return &CosmoFlow{
		Files:       49664,
		FileSize:    32 * storage.MiB,
		ReadGranule: 4 * storage.MiB,
		GPUPerFile:  8 * time.Second,
		Checkpoints: 4,
		CkptBytes:   5 * storage.MiB,
		CkptGranule: 40 * storage.KiB,
	}
}

// Name implements Workload.
func (w *CosmoFlow) Name() string { return "cosmoflow" }

// AppName implements Workload.
func (w *CosmoFlow) AppName() string { return "cosmoflow" }

// DefaultSpec implements Workload: 4 ranks per node (GPU-bound), 6h limit.
func (w *CosmoFlow) DefaultSpec() Spec {
	s := DefaultSpec()
	s.RanksPerNode = 4
	s.TimeLimit = 6 * time.Hour
	return s
}

func (w *CosmoFlow) pfsPath(i int) string {
	return fmt.Sprintf("/p/gpfs1/cosmoflow/data/univ_%05d.h5", i)
}

func (w *CosmoFlow) shmPath(i int) string {
	return fmt.Sprintf("/dev/shm/cosmoflow/univ_%05d.h5", i)
}

// Setup stages the HDF5 dataset on the PFS and attaches the gamma-shaped
// voxel value sample (Table VI).
func (w *CosmoFlow) Setup(env *Env) {
	n := scaleN(w.Files, env.Spec.Scale, 1)
	for i := 0; i < n; i++ {
		env.Sys.Materialize(0, w.pfsPath(i), w.FileSize)
	}
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Gamma(2.0, 3.0) // dark-matter density: gamma
	}
	env.Tr.AddSample("cosmoflow-voxels", sample)
}

// Spawn implements Workload.
func (w *CosmoFlow) Spawn(env *Env) {
	spec := env.Spec
	nFiles := scaleN(w.Files, spec.Scale, 1)
	ranks := env.Job.Ranks()
	bar := sim.NewBarrier(env.E, ranks)
	ckptEvery := nFiles/ranks/w.Checkpoints + 1

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		env.E.Spawn(fmt.Sprintf("cosmoflow-rank%d", rank), func(p *sim.Proc) {
			commSize := ranks
			pathOf := w.pfsPath
			if spec.Optimized {
				// Preload stage (MPIFileUtils-style): every rank copies its
				// shard from the PFS into node-local shared memory with
				// large whole-file transfers.
				pre := env.Client("dbcast", rank)
				for i := rank; i < nFiles; i += ranks {
					src, err := pre.PosixOpen(p, w.pfsPath(i), false)
					if err != nil {
						panic(err)
					}
					if err := src.Read(p, w.FileSize); err != nil {
						panic(err)
					}
					if err := src.Close(p); err != nil {
						panic(err)
					}
					dst, err := pre.PosixOpen(p, w.shmPath(i), true)
					if err != nil {
						panic(err)
					}
					if err := dst.Write(p, w.FileSize); err != nil {
						panic(err)
					}
					if err := dst.Close(p); err != nil {
						panic(err)
					}
				}
				cl.Barrier(p, bar)
				// Training now reads node-locally; HDF5 metadata stays on
				// the node, and MPI-IO aggregation is node-scoped.
				commSize = spec.RanksPerNode
				pathOf = w.shmPath
			}

			done := 0
			for i := rank; i < nFiles; i += ranks {
				path := pathOf(i)
				cl.DescribeFile(path, "hdf5", 3, "int")
				h, err := cl.H5Open(p, path, false, commSize)
				if err != nil {
					panic(err)
				}
				for off := int64(0); off < w.FileSize; off += w.ReadGranule {
					n := w.ReadGranule
					if off+n > w.FileSize {
						n = w.FileSize - off
					}
					if err := h.DatasetRead(p, off, n); err != nil {
						panic(err)
					}
				}
				if err := h.Close(p); err != nil {
					panic(err)
				}
				cl.GPUCompute(p, w.GPUPerFile)
				done++

				// Periodic checkpoints by rank 0 during training.
				if rank == 0 && done%ckptEvery == 0 {
					ck := fmt.Sprintf("/p/gpfs1/cosmoflow/ckpt_%02d.h5", done/ckptEvery)
					cl.DescribeFile(ck, "hdf5", 1, "float")
					hc, err := cl.H5Open(p, ck, true, commSize)
					if err != nil {
						panic(err)
					}
					for off := int64(0); off < w.CkptBytes; off += w.CkptGranule {
						n := w.CkptGranule
						if off+n > w.CkptBytes {
							n = w.CkptBytes - off
						}
						if err := hc.DatasetWrite(p, off, n); err != nil {
							panic(err)
						}
					}
					if err := hc.Close(p); err != nil {
						panic(err)
					}
				}
			}
		})
	}
}
