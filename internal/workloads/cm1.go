package workloads

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
)

// CM1 models the atmospheric-simulation workload of Section IV-A1 /
// Figure 1. Its documented I/O signature:
//
//   - 1280 POSIX ranks on 32 nodes; separate read, write and compute phases.
//   - Startup reads the 16MB configuration files (FPP access, large
//     transfers: "large reads achieve 64GB/s aggregate").
//   - 193 simulation steps; each step all ranks compute, then every node
//     leader opens the shared step file but only rank 0 writes the
//     simulation data, sequentially in 4KB transfers ("small writes achieve
//     64MB/s"), dominating I/O time.
//   - Data is a 3D array with normally distributed values (Table VI).
type CM1 struct {
	ConfigFiles    int           // 16MB configuration files read at startup
	ConfigFileSize int64         //
	Steps          int           // simulation steps
	StepFiles      int           // shared output files, cycled per step
	WritePerStep   int64         // bytes written by rank 0 each step
	WriteGranule   int64         // transfer size of the writes
	ComputePerStep time.Duration // CPU time per step across all ranks
}

// NewCM1 returns the paper-scale CM1 configuration.
func NewCM1() *CM1 {
	return &CM1{
		ConfigFiles:    737,
		ConfigFileSize: 16 * storage.MiB,
		Steps:          193,
		StepFiles:      37,
		WritePerStep:   5632 * storage.KiB, // ~5.5MiB; 193 steps ≈ 1GB total
		WriteGranule:   4 * storage.KiB,
		ComputePerStep: 3 * time.Second,
	}
}

// Name implements Workload.
func (w *CM1) Name() string { return "cm1" }

// AppName implements Workload.
func (w *CM1) AppName() string { return "cm1" }

// DefaultSpec implements Workload: 32 nodes x 40 CPU ranks, 2h limit.
func (w *CM1) DefaultSpec() Spec {
	s := DefaultSpec()
	s.TimeLimit = 2 * time.Hour
	return s
}

func (w *CM1) configPath(i int) string {
	return fmt.Sprintf("/p/gpfs1/cm1/config/namelist_%04d.bin", i)
}

func (w *CM1) stepPath(i int) string {
	return fmt.Sprintf("/p/gpfs1/cm1/out/cm1out_%03d.bin", i)
}

// Setup stages the configuration files and a dataset value sample.
func (w *CM1) Setup(env *Env) {
	n := scaleN(w.ConfigFiles, env.Spec.Scale, 1)
	for i := 0; i < n; i++ {
		env.Sys.Materialize(0, w.configPath(i), w.ConfigFileSize)
	}
	// Step files exist from a prior leg of the simulation (checkpointed
	// runs append); pre-creating them keeps the leaders' non-creating
	// opens valid regardless of rank wake order within a step.
	for i := 0; i < scaleN(w.StepFiles, env.Spec.Scale, 1); i++ {
		env.Sys.Materialize(0, w.stepPath(i), 0)
	}
	// CM1's atmospheric state variables are normally distributed.
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Normal(288, 12) // temperatures around 288K
	}
	env.Tr.AddSample("cm1-state", sample)
}

// Spawn implements Workload.
func (w *CM1) Spawn(env *Env) {
	spec := env.Spec
	nCfg := scaleN(w.ConfigFiles, spec.Scale, 1)
	steps := scaleN(w.Steps, spec.Scale, 1)
	nStepFiles := scaleN(w.StepFiles, spec.Scale, 1)
	ranks := env.Job.Ranks()
	stepBar := sim.NewBarrier(env.E, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		env.E.Spawn(fmt.Sprintf("cm1-rank%d", rank), func(p *sim.Proc) {
			// Phase 1: configuration read. The first nCfg ranks each read
			// one 16MB config file with large sequential transfers.
			if rank < nCfg {
				path := w.configPath(rank)
				cl.DescribeFile(path, "bin", 3, "float")
				f, err := cl.PosixOpen(p, path, false)
				if err != nil {
					panic(err)
				}
				if err := f.Read(p, w.ConfigFileSize); err != nil {
					panic(err)
				}
				if err := f.Close(p); err != nil {
					panic(err)
				}
			}
			cl.Barrier(p, stepBar)

			// Phase 2: alternating compute and simulation output.
			for s := 0; s < steps; s++ {
				cl.Compute(p, w.ComputePerStep)
				path := w.stepPath(s % nStepFiles)
				if env.Job.IsNodeLeader(rank) {
					// Every node leader opens and closes the step file, but
					// only rank 0 writes (Figure 1b).
					f, err := cl.PosixOpen(p, path, false)
					if err != nil {
						panic(err)
					}
					if rank == 0 {
						cl.DescribeFile(path, "bin", 3, "float")
						base, _ := env.Sys.FileSize(0, path)
						for off := int64(0); off < w.WritePerStep; off += w.WriteGranule {
							if err := f.Seek(p, base+off); err != nil {
								panic(err)
							}
							n := w.WriteGranule
							if off+n > w.WritePerStep {
								n = w.WritePerStep - off
							}
							if err := f.WriteAt(p, base+off, n, false); err != nil {
								panic(err)
							}
						}
					}
					if err := f.Close(p); err != nil {
						panic(err)
					}
				}
				cl.Barrier(p, stepBar)
			}
		})
	}
}
