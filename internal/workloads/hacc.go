package workloads

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
)

// HACC models the HACC-I/O checkpoint/restart kernel of Section IV-A2 /
// Figure 2 (file-per-process POSIX variant):
//
//   - 1280 ranks, each owning one checkpoint file; no shared files.
//   - Each rank writes nine 1D particle variables (632MB total per rank,
//     790GB job-wide) in 16MB sequential transfers, then reads everything
//     back to emulate restart.
//   - Files are opened and closed once per variable per phase, producing
//     the paper's "4x more metadata operations than expected" signature
//     (~50% of I/O time on metadata).
//   - Per-rank bandwidth varies despite a uniform access pattern, due to
//     PFS contention (Figure 2c).
//
// On systems with a shared burst buffer (cluster.Cori + storage.Cori),
// Spec.Optimized redirects the checkpoint to the burst buffer — the
// DataWarp staging optimization of Section IV-D3.
type HACC struct {
	BytesPerRank int64         // checkpoint size each rank writes and reads
	Variables    int           // particle variables, each its own open/close
	Granule      int64         // transfer size
	ComputeInit  time.Duration // in-memory particle generation before I/O
}

// NewHACC returns the paper-scale HACC-I/O configuration (16M particles,
// nine variables, 632MB per process).
func NewHACC() *HACC {
	return &HACC{
		BytesPerRank: 632 * storage.MiB,
		Variables:    9,
		Granule:      16 * storage.MiB,
		ComputeInit:  8 * time.Second,
	}
}

// Name implements Workload.
func (w *HACC) Name() string { return "hacc" }

// AppName implements Workload.
func (w *HACC) AppName() string { return "hacc" }

// DefaultSpec implements Workload.
func (w *HACC) DefaultSpec() Spec {
	s := DefaultSpec()
	s.TimeLimit = 2 * time.Hour
	return s
}

// pathFor places the checkpoint under the PFS, or under the shared burst
// buffer for optimized runs on systems that have one.
func (w *HACC) pathFor(spec Spec, rank int) string {
	base := spec.Machine.PFSDir
	if spec.Optimized && spec.Machine.SharedBBDir != "" {
		base = spec.Machine.SharedBBDir
	}
	return fmt.Sprintf("%s/hacc/restart/Part.%05d", base, rank)
}

// Setup attaches the dataset value sample: HACC particle coordinates are
// uniformly distributed over the simulation box (Table VI).
func (w *HACC) Setup(env *Env) {
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Uniform(0, 256)
	}
	env.Tr.AddSample("hacc-particles", sample)
}

// Spawn implements Workload.
func (w *HACC) Spawn(env *Env) {
	spec := env.Spec
	perRank := scaleBytes(w.BytesPerRank, spec.Scale, w.Granule)
	perVar := perRank / int64(w.Variables)
	if perVar < w.Granule {
		perVar = w.Granule
	}
	ranks := env.Job.Ranks()
	bar := sim.NewBarrier(env.E, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		env.E.Spawn(fmt.Sprintf("hacc-rank%d", rank), func(p *sim.Proc) {
			path := w.pathFor(spec, rank)
			cl.DescribeFile(path, "bin", 1, "float")

			// Generate particles in memory.
			cl.Compute(p, w.ComputeInit)
			cl.Barrier(p, bar)

			// Checkpoint: one open/close per variable, sequential 16MB
			// writes with explicit positioning (seek + write per chunk).
			var base int64
			for v := 0; v < w.Variables; v++ {
				f, err := cl.PosixOpen(p, path, v == 0)
				if err != nil {
					panic(err)
				}
				for off := int64(0); off < perVar; off += w.Granule {
					n := w.Granule
					if off+n > perVar {
						n = perVar - off
					}
					if err := f.Seek(p, base+off); err != nil {
						panic(err)
					}
					if err := f.WriteAt(p, base+off, n, false); err != nil {
						panic(err)
					}
				}
				if err := f.Close(p); err != nil {
					panic(err)
				}
				base += perVar
			}
			cl.Barrier(p, bar)

			// Restart: read the checkpoint back, again per variable.
			base = 0
			for v := 0; v < w.Variables; v++ {
				f, err := cl.PosixOpen(p, path, false)
				if err != nil {
					panic(err)
				}
				if _, err := cl.PosixStat(p, path); err != nil {
					panic(err)
				}
				for off := int64(0); off < perVar; off += w.Granule {
					n := w.Granule
					if off+n > perVar {
						n = perVar - off
					}
					if err := f.Seek(p, base+off); err != nil {
						panic(err)
					}
					if err := f.ReadAt(p, base+off, n, false); err != nil {
						panic(err)
					}
				}
				if err := f.Close(p); err != nil {
					panic(err)
				}
				base += perVar
			}
		})
	}
}
