package workloads

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
)

// MontageMPI models the MPI-parallel Montage mosaic workflow of Section
// IV-A5 / Figure 5 and the Section V-B case study:
//
//   - 32 node-parallel segments; within a node the workflow alternates
//     sequential (leader-only) and parallel stages, so the first rank of
//     every node performs ~40x the I/O of other ranks.
//   - Five applications over six logical stages: mProject (reads input
//     FITS with 64KB transfers, writes projected intermediates in <4KB
//     application writes via STDIO), mImgtbl (small tables), mAddMPI (the
//     only MPI-parallel job: 1280 processes reading intermediates and
//     writing the per-node mosaic), mShrink and mViewer (sequential).
//   - Intermediate files are produced and consumed node-locally; on GPFS
//     they pay small-transfer costs, which is 95% of the workflow's I/O
//     time. Spec.Optimized redirects them to /dev/shm (Figure 8: 3.9-8x).
type MontageMPI struct {
	FITSPerNode     int   // input images per node segment
	FITSSize        int64 //
	FITSReadGranule int64 // 64KB input transfers
	ProjPerNode     int   // projected intermediates per node
	ProjSize        int64 //
	SmallGranule    int64 // <4KB intermediate transfers
	ProjReadOverlap int   // times mAddMPI re-reads projected data
	MosaicPerNode   int64 // per-node mosaic bytes (written by all ranks)
	MosaicGranule   int64 //
	ShrunkPerNode   int64 // mShrink output
	ViewGranule     int64 // mViewer read granularity
	PNGPerNode      int64 // final image bytes per node
	GlobalHdrs      int   // cross-node shared header files
	ProjectCompute  time.Duration
	AddCompute      time.Duration
	ShrinkCompute   time.Duration
	ViewerCompute   time.Duration
}

// NewMontageMPI returns the paper-scale configuration (survey NGC 3372,
// 32 segments).
func NewMontageMPI() *MontageMPI {
	return &MontageMPI{
		FITSPerNode:     30,
		FITSSize:        12800 * storage.KiB, // 12.5MiB; 960 files = 12GB
		FITSReadGranule: 64 * storage.KiB,
		ProjPerNode:     16,
		ProjSize:        8 * storage.MiB, // 4GB projected intermediates
		SmallGranule:    4 * storage.KiB,
		ProjReadOverlap: 3,                 // mAddMPI reads overlap regions repeatedly
		MosaicPerNode:   640 * storage.MiB, // 20GB mosaic
		MosaicGranule:   32 * storage.KiB,
		ShrunkPerNode:   10 * storage.MiB,
		ViewGranule:     16 * storage.KiB,
		PNGPerNode:      5 * storage.MiB,
		GlobalHdrs:      16,
		ProjectCompute:  90 * time.Second,
		AddCompute:      60 * time.Second,
		ShrinkCompute:   10 * time.Second,
		ViewerCompute:   40 * time.Second,
	}
}

// Name implements Workload.
func (w *MontageMPI) Name() string { return "montage-mpi" }

// AppName implements Workload.
func (w *MontageMPI) AppName() string { return "mProject" }

// DefaultSpec implements Workload.
func (w *MontageMPI) DefaultSpec() Spec {
	s := DefaultSpec()
	s.TimeLimit = 2 * time.Hour
	s.Iface.StdioPerOpCPU = 5 * time.Microsecond // libc cost per tiny access
	return s
}

func (w *MontageMPI) fitsPath(node, i int) string {
	return fmt.Sprintf("/p/gpfs1/montage/input/seg%02d/img_%03d.fits", node, i)
}

// workDir returns the intermediate directory: GPFS in the baseline,
// node-local shared memory when optimized.
func (w *MontageMPI) workDir(env *Env, node int) string {
	if env.Spec.Optimized {
		return fmt.Sprintf("/dev/shm/montage/seg%02d", node)
	}
	return fmt.Sprintf("/p/gpfs1/montage/work/seg%02d", node)
}

func (w *MontageMPI) hdrPath(i int) string {
	return fmt.Sprintf("/p/gpfs1/montage/region_%02d.hdr", i)
}

// Setup stages the input FITS survey and region headers.
func (w *MontageMPI) Setup(env *Env) {
	nFits := scaleN(w.FITSPerNode, env.Spec.Scale, 1)
	for node := 0; node < env.Spec.Nodes; node++ {
		for i := 0; i < nFits; i++ {
			env.Sys.Materialize(0, w.fitsPath(node, i), w.FITSSize)
		}
	}
	for i := 0; i < w.GlobalHdrs; i++ {
		env.Sys.Materialize(0, w.hdrPath(i), 4*storage.KiB)
	}
	// Pre-create each node's mosaic so the parallel mAddMPI ranks can open
	// it regardless of wake order within the stage.
	for node := 0; node < env.Spec.Nodes; node++ {
		env.Sys.Materialize(node, w.workDir(env, node)+"/mosaic.fits", 0)
	}
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Uniform(0, 65535) // FITS pixel counts: uniform
	}
	env.Tr.AddSample("montage-pixels", sample)
}

// Spawn implements Workload.
func (w *MontageMPI) Spawn(env *Env) {
	spec := env.Spec
	nFits := scaleN(w.FITSPerNode, spec.Scale, 1)
	nProj := scaleN(w.ProjPerNode, spec.Scale, 1)
	mosaic := scaleBytes(w.MosaicPerNode, spec.Scale, w.MosaicGranule)
	shrunk := scaleBytes(w.ShrunkPerNode, spec.Scale, w.SmallGranule)
	png := scaleBytes(w.PNGPerNode, spec.Scale, 64*storage.KiB)
	ranks := env.Job.Ranks()

	// Stage gates: mAddMPI starts after every node finished projection and
	// tables; mShrink/mViewer after the global mosaic barrier.
	projDone := sim.NewBarrier(env.E, ranks)
	addDone := sim.NewBarrier(env.E, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		node := env.Job.NodeOf(rank)
		leader := env.Job.IsNodeLeader(rank)
		env.E.Spawn(fmt.Sprintf("montage-rank%d", rank), func(p *sim.Proc) {
			work := w.workDir(env, node)

			// Stages 1-2 (sequential, leader only): mProject and mImgtbl.
			if leader {
				w.runProject(env, p, rank, node, work, nFits, nProj)
				w.runImgtbl(env, p, rank, node, work, nProj)
			}
			env.Client("mProject", rank).Barrier(p, projDone)

			// Stage 3 (parallel): mAddMPI over every rank.
			w.runAddMPI(env, p, rank, node, work, nProj, mosaic)
			env.Client("mAddMPI", rank).Barrier(p, addDone)

			// Stages 4-6 (sequential, leader only): mShrink, mViewer.
			if leader {
				w.runShrink(env, p, rank, node, work, mosaic, shrunk)
				w.runViewer(env, p, rank, node, work, mosaic, shrunk, png)
			}
		})
	}
}

// runProject reads the node's FITS segment and writes projected
// intermediates with small STDIO writes.
func (w *MontageMPI) runProject(env *Env, p *sim.Proc, rank, node int, work string, nFits, nProj int) {
	cl := env.ClientAt("mProject", rank, node)
	// Read the shared region headers (cross-node shared small files).
	for i := 0; i < w.GlobalHdrs; i++ {
		f, err := cl.StdioOpen(p, w.hdrPath(i), 'r')
		if err != nil {
			panic(err)
		}
		if err := f.Read(p, 2*storage.KiB); err != nil {
			panic(err)
		}
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
	for i := 0; i < nFits; i++ {
		path := w.fitsPath(node, i)
		cl.DescribeFile(path, "fits", 2, "int")
		f, err := cl.StdioOpen(p, path, 'r')
		if err != nil {
			panic(err)
		}
		for off := int64(0); off < w.FITSSize; off += w.FITSReadGranule {
			n := w.FITSReadGranule
			if off+n > w.FITSSize {
				n = w.FITSSize - off
			}
			if err := f.Read(p, n); err != nil {
				panic(err)
			}
		}
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
	cl.Compute(p, w.ProjectCompute)
	for i := 0; i < nProj; i++ {
		path := fmt.Sprintf("%s/proj_%03d.fits", work, i)
		cl.DescribeFile(path, "bin", 3, "int")
		f, err := cl.StdioOpen(p, path, 'w')
		if err != nil {
			panic(err)
		}
		for off := int64(0); off < w.ProjSize; off += w.SmallGranule {
			if err := f.Write(p, w.SmallGranule); err != nil {
				panic(err)
			}
		}
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
}

// runImgtbl writes the node's image table and header.
func (w *MontageMPI) runImgtbl(env *Env, p *sim.Proc, rank, node int, work string, nProj int) {
	cl := env.ClientAt("mImgtbl", rank, node)
	for i := 0; i < nProj; i++ {
		if _, err := cl.PosixStat(p, fmt.Sprintf("%s/proj_%03d.fits", work, i)); err != nil {
			panic(err)
		}
	}
	for _, name := range []string{"images.tbl", "mosaic.hdr"} {
		f, err := cl.StdioOpen(p, work+"/"+name, 'w')
		if err != nil {
			panic(err)
		}
		if err := f.Write(p, 64*storage.KiB); err != nil {
			panic(err)
		}
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
}

// runAddMPI is the parallel coaddition: every rank reads its share of the
// node's projected intermediates (with overlap re-reads) and writes its
// slice of the node mosaic.
func (w *MontageMPI) runAddMPI(env *Env, p *sim.Proc, rank, node int, work string, nProj int, mosaic int64) {
	cl := env.ClientAt("mAddMPI", rank, node)
	rpn := env.Spec.RanksPerNode
	local := env.Job.LocalRank(rank)

	// Read the node's table once per rank (shared within the node).
	tbl, err := cl.StdioOpen(p, work+"/images.tbl", 'r')
	if err != nil {
		panic(err)
	}
	if err := tbl.Read(p, 4*storage.KiB); err != nil {
		panic(err)
	}
	if err := tbl.Close(p); err != nil {
		panic(err)
	}

	// Overlapped reads of the projected intermediates.
	share := w.ProjSize * int64(w.ProjReadOverlap) / int64(rpn)
	for i := local % nProj; i < nProj; i += rpn {
		path := fmt.Sprintf("%s/proj_%03d.fits", work, i)
		f, err := cl.StdioOpen(p, path, 'r')
		if err != nil {
			panic(err)
		}
		read := int64(0)
		for read < share {
			n := w.SmallGranule
			if f.Pos()+n > w.ProjSize {
				if err := f.Seek(p, 0); err != nil { // wrap: overlap re-read
					panic(err)
				}
			}
			if err := f.Read(p, n); err != nil {
				panic(err)
			}
			read += n
		}
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
	cl.Compute(p, w.AddCompute)

	// Write this rank's slice of the node mosaic.
	mosaicPath := work + "/mosaic.fits"
	f, err := cl.PosixOpen(p, mosaicPath, false)
	if err != nil {
		panic(err)
	}
	cl.DescribeFile(mosaicPath, "fits", 2, "int")
	slice := mosaic / int64(rpn)
	base := int64(local) * slice
	for off := int64(0); off < slice; off += w.MosaicGranule {
		n := w.MosaicGranule
		if off+n > slice {
			n = slice - off
		}
		if err := f.WriteAt(p, base+off, n, false); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
}

// runShrink downsamples the mosaic.
func (w *MontageMPI) runShrink(env *Env, p *sim.Proc, rank, node int, work string, mosaic, shrunk int64) {
	cl := env.ClientAt("mShrink", rank, node)
	f, err := cl.PosixOpen(p, work+"/mosaic.fits", false)
	if err != nil {
		panic(err)
	}
	// Sparse sampling read of the mosaic.
	for off := int64(0); off < mosaic/8; off += w.ViewGranule {
		if err := f.ReadAt(p, off*8, w.ViewGranule, false); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
	cl.Compute(p, w.ShrinkCompute)
	out, err := cl.StdioOpen(p, work+"/shrunken.fits", 'w')
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < shrunk; off += w.SmallGranule {
		if err := out.Write(p, w.SmallGranule); err != nil {
			panic(err)
		}
	}
	if err := out.Close(p); err != nil {
		panic(err)
	}
}

// runViewer renders the final PNG from the shrunken mosaic.
func (w *MontageMPI) runViewer(env *Env, p *sim.Proc, rank, node int, work string, mosaic, shrunk, png int64) {
	cl := env.ClientAt("mViewer", rank, node)
	f, err := cl.PosixOpen(p, work+"/shrunken.fits", false)
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < shrunk; off += w.ViewGranule {
		n := w.ViewGranule
		if off+n > shrunk {
			n = shrunk - off
		}
		if err := f.ReadAt(p, off, n, false); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
	// Re-scan a slice of the mosaic for color mapping.
	m, err := cl.PosixOpen(p, work+"/mosaic.fits", false)
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < mosaic/8; off += w.ViewGranule {
		if err := m.ReadAt(p, off*8, w.ViewGranule, false); err != nil {
			panic(err)
		}
	}
	if err := m.Close(p); err != nil {
		panic(err)
	}
	cl.Compute(p, w.ViewerCompute)
	// The final PNG always lands on the PFS, even in the optimized run.
	out, err := cl.StdioOpen(p, fmt.Sprintf("/p/gpfs1/montage/mosaic_seg%02d.png", node), 'w')
	if err != nil {
		panic(err)
	}
	cl.DescribeFile(out.Path(), "png", 2, "int")
	for off := int64(0); off < png; off += 64 * storage.KiB {
		if err := out.Write(p, 64*storage.KiB); err != nil {
			panic(err)
		}
	}
	if err := out.Close(p); err != nil {
		panic(err)
	}
}
