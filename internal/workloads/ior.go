package workloads

import (
	"fmt"
	"time"

	"vani/internal/sim"
	"vani/internal/storage"
)

// IOR models the configurable I/O benchmark the paper uses to measure the
// storage entities' achievable bandwidth (Table IX: "64GB/s using 32 node
// IOR"). It is also the natural probe for users exploring their system
// before characterizing a real application: file-per-process or
// single-shared-file, configurable transfer size, write phase then
// optional read-back.
type IOR struct {
	BytesPerRank int64 // volume each rank writes (and reads back)
	TransferSize int64 //
	SharedFile   bool  // single shared file instead of file-per-process
	ReadBack     bool  // verify phase re-reading the data
	FsyncOnClose bool  // fsync before close, like IOR's -e
}

// NewIOR returns the Table IX configuration: 4GB per node-rank in 16MB
// transfers, file-per-process, write then read.
func NewIOR() *IOR {
	return &IOR{
		BytesPerRank: 4 * storage.GiB,
		TransferSize: 16 * storage.MiB,
		SharedFile:   false,
		ReadBack:     true,
		FsyncOnClose: true,
	}
}

// Name implements Workload.
func (w *IOR) Name() string { return "ior" }

// AppName implements Workload.
func (w *IOR) AppName() string { return "ior" }

// DefaultSpec implements Workload: one rank per node, the IOR
// configuration of the Table IX probe.
func (w *IOR) DefaultSpec() Spec {
	s := DefaultSpec()
	s.RanksPerNode = 1
	s.TimeLimit = time.Hour
	return s
}

func (w *IOR) pathFor(spec Spec, rank int) string {
	if w.SharedFile {
		return spec.Machine.PFSDir + "/ior/testfile"
	}
	return fmt.Sprintf("%s/ior/testfile.%05d", spec.Machine.PFSDir, rank)
}

// Setup pre-creates the shared file so every rank's open succeeds
// regardless of arrival order.
func (w *IOR) Setup(env *Env) {
	if w.SharedFile {
		env.Sys.Materialize(0, w.pathFor(env.Spec, 0), 0)
	}
	sample := make([]float64, 1000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Uniform(0, 1) // IOR writes synthetic uniform junk
	}
	env.Tr.AddSample("ior-data", sample)
}

// Spawn implements Workload.
func (w *IOR) Spawn(env *Env) {
	spec := env.Spec
	perRank := scaleBytes(w.BytesPerRank, spec.Scale, w.TransferSize)
	// IOR issues whole blocks: round the per-rank volume to the transfer
	// size.
	perRank -= perRank % w.TransferSize
	ranks := env.Job.Ranks()
	bar := sim.NewBarrier(env.E, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		env.E.Spawn(fmt.Sprintf("ior-rank%d", rank), func(p *sim.Proc) {
			path := w.pathFor(spec, rank)
			cl.DescribeFile(path, "bin", 1, "byte")
			base := int64(0)
			if w.SharedFile {
				base = int64(rank) * perRank
			}

			// Write phase.
			f, err := cl.PosixOpen(p, path, !w.SharedFile)
			if err != nil {
				panic(err)
			}
			for off := int64(0); off < perRank; off += w.TransferSize {
				n := w.TransferSize
				if off+n > perRank {
					n = perRank - off
				}
				if err := f.WriteAt(p, base+off, n, false); err != nil {
					panic(err)
				}
			}
			if w.FsyncOnClose {
				if err := f.Sync(p); err != nil {
					panic(err)
				}
			}
			if err := f.Close(p); err != nil {
				panic(err)
			}
			cl.Barrier(p, bar)

			// Read-back phase.
			if !w.ReadBack {
				return
			}
			f, err = cl.PosixOpen(p, path, false)
			if err != nil {
				panic(err)
			}
			for off := int64(0); off < perRank; off += w.TransferSize {
				n := w.TransferSize
				if off+n > perRank {
					n = perRank - off
				}
				if err := f.ReadAt(p, base+off, n, false); err != nil {
					panic(err)
				}
			}
			if err := f.Close(p); err != nil {
				panic(err)
			}
		})
	}
}
