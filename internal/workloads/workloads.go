// Package workloads implements synthetic generators for the paper's six
// exemplar HPC workloads — CM1 (atmospheric simulation), HACC-I/O
// (checkpoint/restart kernel), CosmoFlow (deep-learning over HDF5), JAG ICF
// (deep-learning over NumPy), and the two Montage mosaic workflows (MPI and
// Pegasus) — plus the IOR benchmark the paper uses to probe storage
// entities (Table IX).
//
// Each generator scripts the I/O pattern the paper documents for the real
// application — file counts and sizes, transfer granularities, interfaces,
// rank roles, phase structure, and compute/IO overlap — against the
// simulated storage stack, producing the traces the analyzer characterizes.
// A Scale knob shrinks volumes and counts proportionally so tests and
// benchmarks stay fast; Scale = 1 is the paper's full configuration.
package workloads

import (
	"fmt"
	"sort"
	"time"

	"vani/internal/cluster"
	"vani/internal/iface"
	"vani/internal/sim"
	"vani/internal/storage"
	"vani/internal/trace"
)

// Spec configures one workload run.
type Spec struct {
	Nodes        int
	RanksPerNode int
	TimeLimit    time.Duration
	Scale        float64 // 1.0 = paper scale; smaller shrinks proportionally
	Seed         int64

	// Optimized applies the paper's case-study reconfiguration for
	// workloads that have one (CosmoFlow: preload dataset to /dev/shm;
	// Montage: keep intermediates in /dev/shm). Other workloads ignore it.
	Optimized bool

	// Tracing. TraceOverhead is the virtual time charged per recorded
	// event; the paper reports ~8% runtime overhead from Recorder.
	TraceEnabled  bool
	TraceOverhead time.Duration

	Machine cluster.Machine
	Storage storage.Config
	Iface   iface.Options
}

// DefaultSpec returns the common 32-node Lassen configuration.
func DefaultSpec() Spec {
	return Spec{
		Nodes:        32,
		RanksPerNode: 40,
		TimeLimit:    2 * time.Hour,
		Scale:        1.0,
		Seed:         1,
		TraceEnabled: true,
		Machine:      cluster.Lassen(),
		Storage:      storage.Lassen(),
		Iface:        iface.Defaults(),
	}
}

// Workload is one exemplar generator.
type Workload interface {
	// Name returns the registry name ("cm1", "hacc", ...).
	Name() string
	// AppName returns the primary executable name for Table I.
	AppName() string
	// DefaultSpec returns the paper's configuration for this workload.
	DefaultSpec() Spec
	// Setup materializes pre-existing input datasets.
	Setup(env *Env)
	// Spawn launches the workload's processes on the environment's engine.
	Spawn(env *Env)
}

// Env is the assembled simulation environment a workload runs in.
type Env struct {
	E    *sim.Engine
	Job  cluster.Job
	Sys  *storage.System
	Tr   *trace.Tracer
	RNG  *sim.RNG
	Spec Spec
}

// Client builds the per-rank interface client for an application name.
func (env *Env) Client(app string, rank int) *iface.Client {
	return iface.NewClient(env.Sys, env.Tr, env.Spec.Iface, app, rank, env.Job.NodeOf(rank))
}

// ClientAt builds a client for an explicit (rank, node) pair, used by
// workflow tasks whose slot-to-node mapping is not the job's block
// placement.
func (env *Env) ClientAt(app string, rank, node int) *iface.Client {
	return iface.NewClient(env.Sys, env.Tr, env.Spec.Iface, app, rank, node)
}

// Result is the outcome of one simulated run.
type Result struct {
	Trace   *trace.Trace
	Runtime time.Duration
	Sys     *storage.System
	Job     cluster.Job
	Spec    Spec
	// TraceMerge is the wall-clock time the tracer spent merging its
	// per-rank shards at Finish (the pipeline's first stage timing).
	TraceMerge time.Duration
}

// Run assembles the environment, executes the workload to completion, and
// returns the trace and runtime.
func Run(w Workload, spec Spec) (*Result, error) {
	if spec.Scale <= 0 || spec.Scale > 1 {
		return nil, fmt.Errorf("workloads: scale %v out of (0, 1]", spec.Scale)
	}
	job, err := cluster.NewJob(w.Name()+"-job", spec.Machine, spec.Nodes, spec.RanksPerNode, spec.TimeLimit)
	if err != nil {
		return nil, err
	}
	e := sim.NewEngine()
	rng := sim.NewRNG(spec.Seed)
	sys := storage.New(e, spec.Storage, spec.Nodes, rng.Fork())
	tr := trace.NewTracer()
	tr.SetEnabled(spec.TraceEnabled)
	tr.SetOverhead(spec.TraceOverhead)
	tr.SetMeta(trace.Meta{
		Workload:     w.Name(),
		JobID:        job.ID,
		Nodes:        spec.Nodes,
		CoresPerNode: spec.Machine.CoresPerNode,
		GPUsPerNode:  spec.Machine.GPUsPerNode,
		MemPerNodeGB: spec.Machine.MemPerNodeGB,
		Ranks:        job.Ranks(),
		NodeLocalDir: spec.Machine.NodeLocalDir,
		SharedBBDir:  spec.Machine.SharedBBDir,
		PFSDir:       spec.Machine.PFSDir,
		JobTimeLimit: spec.TimeLimit,
	})
	env := &Env{E: e, Job: job, Sys: sys, Tr: tr, RNG: rng, Spec: spec}
	w.Setup(env)
	w.Spawn(env)
	runtime := e.Run()
	if err := e.Err(); err != nil {
		return nil, err
	}
	merged := tr.Finish()
	return &Result{
		Trace:      merged,
		Runtime:    runtime,
		Sys:        sys,
		Job:        job,
		Spec:       spec,
		TraceMerge: tr.MergeTime(),
	}, nil
}

// scaleN scales an integer count, keeping at least min.
func scaleN(n int, s float64, min int) int {
	v := int(float64(n) * s)
	if v < min {
		return min
	}
	return v
}

// ScaleN exposes the generators' count-scaling rule so external
// compilers (internal/spec) shrink counts exactly like the hand-coded
// generators do.
func ScaleN(n int, s float64, min int) int { return scaleN(n, s, min) }

// ScaleBytes exposes the generators' byte-scaling rule.
func ScaleBytes(b int64, s float64, unit int64) int64 { return scaleBytes(b, s, unit) }

// scaleBytes scales a byte volume, keeping at least one unit.
func scaleBytes(b int64, s float64, unit int64) int64 {
	v := int64(float64(b) * s)
	if v < unit {
		return unit
	}
	return v
}

// registry of workload constructors.
var registry = map[string]func() Workload{
	"cm1":             func() Workload { return NewCM1() },
	"ior":             func() Workload { return NewIOR() },
	"hacc":            func() Workload { return NewHACC() },
	"cosmoflow":       func() Workload { return NewCosmoFlow() },
	"jag":             func() Workload { return NewJAG() },
	"montage-mpi":     func() Workload { return NewMontageMPI() },
	"montage-pegasus": func() Workload { return NewMontagePegasus() },
}

// New constructs a workload by registry name.
func New(name string) (Workload, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists the registered workloads in sorted order.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All constructs every registered workload in name order.
func All() []Workload {
	var ws []Workload
	for _, n := range Names() {
		w, _ := New(n)
		ws = append(ws, w)
	}
	return ws
}
