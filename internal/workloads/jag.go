package workloads

import (
	"fmt"
	"time"

	"vani/internal/iface"
	"vani/internal/sim"
	"vani/internal/storage"
)

// JAG models the JAG ICF surrogate-training workload of Section IV-A4 /
// Figure 4:
//
//   - 128 ranks (4 per node, GPU training) reading a single 200MB NumPy
//     (.npy) dataset of ~50K small samples through STDIO.
//   - During the first epoch every rank streams the full dataset in
//     sample-sized (<4KB) accesses, then caches it in memory for the
//     remaining epochs (Table I: 25GB read = 128 ranks x 200MB).
//   - Each epoch rank 0 appends a ~20KB checkpoint in 4KB writes.
//   - A validation phase at the end re-reads a random subset with
//     seek+read pairs, the second I/O phase visible in Figure 4c.
//   - Metadata operations (opens, seeks) dominate the op mix (~70%).
type JAG struct {
	DatasetBytes    int64         // .npy dataset size
	SampleSize      int64         // bytes per sample (drives access size)
	Epochs          int           //
	ComputePerEpoch time.Duration // GPU time per epoch
	CkptBytes       int64         // checkpoint bytes per epoch (rank 0)
	CkptGranule     int64         //
	ValidationReads int           // random sample re-reads per rank at end
}

// NewJAG returns the paper-scale configuration (200MB npy, 100 epochs,
// batch size 128).
func NewJAG() *JAG {
	return &JAG{
		DatasetBytes:    200 * storage.MiB,
		SampleSize:      4 * storage.KiB,
		Epochs:          100,
		ComputePerEpoch: 11 * time.Second,
		CkptBytes:       20 * storage.KiB,
		CkptGranule:     4 * storage.KiB,
		ValidationReads: 512,
	}
}

// Name implements Workload.
func (w *JAG) Name() string { return "jag" }

// AppName implements Workload.
func (w *JAG) AppName() string { return "jag" }

// DefaultSpec implements Workload: 4 GPU ranks per node, 6h limit.
func (w *JAG) DefaultSpec() Spec {
	s := DefaultSpec()
	s.RanksPerNode = 4
	s.TimeLimit = 6 * time.Hour
	// The NumPy loader spends ~3ms of interpreter/deserialization time
	// around every sample access; Recorder sees it inside the call span.
	s.Iface.StdioPerOpCPU = 3 * time.Millisecond
	return s
}

const jagDataPath = "/p/gpfs1/jag/images_scalars.npy"
const jagCkptPath = "/p/gpfs1/jag/ckpt.bin"

// Setup stages the dataset and its (normal) value sample.
func (w *JAG) Setup(env *Env) {
	env.Sys.Materialize(0, jagDataPath, scaleBytes(w.DatasetBytes, env.Spec.Scale, w.SampleSize))
	sample := make([]float64, 2000)
	rng := env.RNG.Fork()
	for i := range sample {
		sample[i] = rng.Normal(0, 1) // standardized image channels
	}
	env.Tr.AddSample("jag-samples", sample)
}

// Spawn implements Workload.
func (w *JAG) Spawn(env *Env) {
	spec := env.Spec
	dataset := scaleBytes(w.DatasetBytes, spec.Scale, w.SampleSize)
	samples := int(dataset / w.SampleSize)
	valReads := scaleN(w.ValidationReads, spec.Scale, 8)
	ranks := env.Job.Ranks()
	bar := sim.NewBarrier(env.E, ranks)

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		cl := env.Client(w.AppName(), rank)
		rng := env.RNG.Fork()
		env.E.Spawn(fmt.Sprintf("jag-rank%d", rank), func(p *sim.Proc) {
			cl.DescribeFile(jagDataPath, "npy", 3, "float")

			// First epoch: stream the whole dataset in sample-sized reads,
			// caching it in memory; every rank opens and closes once.
			f, err := cl.StdioOpen(p, jagDataPath, 'r')
			if err != nil {
				panic(err)
			}
			for s := 0; s < samples; s++ {
				if err := f.Read(p, w.SampleSize); err != nil {
					panic(err)
				}
			}
			cl.GPUCompute(p, w.ComputePerEpoch)
			if rank == 0 {
				w.checkpoint(cl, p)
			}
			cl.Barrier(p, bar)

			// Remaining epochs run from the in-memory cache: GPU only,
			// plus rank 0's periodic checkpoint.
			for e := 1; e < w.Epochs; e++ {
				cl.GPUCompute(p, w.ComputePerEpoch)
				if rank == 0 {
					w.checkpoint(cl, p)
				}
			}
			cl.Barrier(p, bar)

			// Validation: random sample accesses (seek+read) at the end.
			for i := 0; i < valReads; i++ {
				off := rng.Int63n(int64(samples)) * w.SampleSize
				if err := f.Seek(p, off); err != nil {
					panic(err)
				}
				if err := f.Read(p, w.SampleSize); err != nil {
					panic(err)
				}
			}
			if err := f.Close(p); err != nil {
				panic(err)
			}
		})
	}
}

// checkpoint appends one epoch checkpoint as rank 0.
func (w *JAG) checkpoint(cl *iface.Client, p *sim.Proc) {
	f, err := cl.StdioOpen(p, jagCkptPath, 'w')
	if err != nil {
		panic(err)
	}
	for off := int64(0); off < w.CkptBytes; off += w.CkptGranule {
		n := w.CkptGranule
		if off+n > w.CkptBytes {
			n = w.CkptBytes - off
		}
		if err := f.Write(p, n); err != nil {
			panic(err)
		}
	}
	if err := f.Close(p); err != nil {
		panic(err)
	}
}
