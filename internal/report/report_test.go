package report

import (
	"strings"
	"testing"
	"time"

	"vani/internal/core"
	"vani/internal/stats"
	"vani/internal/workloads"
)

func sampleChar(t *testing.T) *core.Characterization {
	t.Helper()
	w := workloads.NewHACC()
	spec := w.DefaultSpec()
	spec.Nodes = 2
	spec.RanksPerNode = 4
	spec.Scale = 0.02
	res, err := workloads.Run(w, spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Storage = &spec.Storage
	return core.Analyze(res.Trace, opt)
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "a", "bee", "c")
	tb.AddRow("1", "2", "3")
	tb.AddRow("longer", "x") // short row padded
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// All data lines have equal width.
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("misaligned line %q (%d != %d)", l, len(l), w)
		}
	}
	if !strings.Contains(out, "longer") {
		t.Error("row content missing")
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.304, 0.696); got != "30%, 70%" {
		t.Errorf("Pct = %q", got)
	}
	if got := BW(64 << 20); got != "64MB/s" {
		t.Errorf("BW = %q", got)
	}
	if got := Dur(73 * time.Second); got != "73s" {
		t.Errorf("Dur = %q", got)
	}
	if got := Dur(300 * time.Millisecond); got != "0.3s" {
		t.Errorf("Dur = %q", got)
	}
}

func TestHistogramRendering(t *testing.T) {
	var h stats.SizeHistogram
	h.Add(1024, time.Millisecond)
	h.Add(1024, time.Millisecond)
	h.Add(32<<20, 10*time.Millisecond)
	out := Histogram("hist", &h)
	if !strings.Contains(out, "<4KB") || !strings.Contains(out, ">=16MB") {
		t.Errorf("bucket labels missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	empty := Histogram("none", &stats.SizeHistogram{})
	if !strings.Contains(empty, "no requests") {
		t.Error("empty histogram not handled")
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := stats.NewTimeline(10*time.Second, 10)
	tl.Add(0, time.Second, 1<<20)
	out := Timeline("reads", tl, 10*time.Second)
	if !strings.Contains(out, "peak") || !strings.Contains(out, "#") {
		t.Errorf("timeline missing parts:\n%s", out)
	}
	idle := Timeline("idle", stats.NewTimeline(time.Second, 4), time.Second)
	if !strings.Contains(idle, "idle") {
		t.Error("idle timeline not handled")
	}
}

func TestAllTablesRender(t *testing.T) {
	c := sampleChar(t)
	out := AllTables([]Named{{Name: "HACC", C: c}}, 60<<30)
	for _, want := range []string{
		"Table I:", "Table II:", "Table III:", "Table IV:", "Table V:",
		"Table VI:", "Table VII:", "Table VIII:", "Table IX:", "Table X:", "Table XI:",
		"HACC", "POSIX", "/p/gpfs1", "measured",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("AllTables missing %q", want)
		}
	}
}

func TestTableIValues(t *testing.T) {
	c := sampleChar(t)
	out := TableI([]Named{{Name: "HACC", C: c}})
	if !strings.Contains(out, "GB") && !strings.Contains(out, "MB") {
		t.Errorf("Table I lacks volumes:\n%s", out)
	}
	if !strings.Contains(out, "Seq") {
		t.Errorf("Table I lacks access pattern:\n%s", out)
	}
}

func TestFigureRender(t *testing.T) {
	c := sampleChar(t)
	out := Figure(c)
	for _, want := range []string{"(a)", "(b)", "(c)", "read", "write"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out[:200])
		}
	}
}

func TestGranStr(t *testing.T) {
	cases := []struct {
		g    core.Granularity
		want string
	}{
		{core.Granularity{}, "-"},
		{core.Granularity{Read: 4096}, "4KB"},
		{core.Granularity{Write: 4096}, "4KB"},
		{core.Granularity{Read: 16 << 20, Write: 16 << 20}, "16MB"},
		{core.Granularity{Read: 16 << 20, Write: 4096}, "4KB-16MB"},
	}
	for _, c := range cases {
		if got := granStr(c.g); got != c.want {
			t.Errorf("granStr(%+v) = %q, want %q", c.g, got, c.want)
		}
	}
}

func TestShorten(t *testing.T) {
	if got := shorten("short", 10); got != "short" {
		t.Errorf("shorten = %q", got)
	}
	long := strings.Repeat("x", 60)
	if got := shorten(long, 20); len(got) != 20 || !strings.HasPrefix(got, "...") {
		t.Errorf("shorten long = %q", got)
	}
}

func TestOrNAAndBoolNA(t *testing.T) {
	if orNA("") != "NA" || orNA("/x") != "/x" {
		t.Error("orNA wrong")
	}
	if boolNA(true) != "yes" || boolNA(false) != "NA" {
		t.Error("boolNA wrong")
	}
}

func TestRankBWSummaryRendering(t *testing.T) {
	rbw := []core.RankBandwidth{
		{Rank: 0, ReadBW: 1 << 30, WriteBW: 2 << 30},
		{Rank: 1, ReadBW: 2 << 30, WriteBW: 4 << 30},
	}
	out := RankBWSummary(rbw)
	for _, want := range []string{"write", "read", "min", "p50", "max", "2 ranks"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if empty := RankBWSummary(nil); !strings.Contains(empty, "no per-rank data") {
		t.Error("empty summary not handled")
	}
}

func TestPhaseTableRendersAllPhases(t *testing.T) {
	c := sampleChar(t)
	out := PhaseTable("hacc", c)
	if !strings.Contains(out, "I/O phases of hacc") {
		t.Errorf("missing title:\n%s", out)
	}
	rows := strings.Count(out, "\n") - 2 // title + header + separator
	if rows < len(c.Phases) {
		t.Errorf("rendered %d rows for %d phases", rows, len(c.Phases))
	}
}
