package report

import (
	"fmt"
	"strings"

	"vani/internal/core"
)

// Named is a characterization labeled with its workload's display name,
// the column unit of the paper's tables.
type Named struct {
	Name string
	C    *core.Characterization
}

// TableI renders the high-level I/O behavior summary (Table I).
func TableI(cols []Named) string {
	t := NewTable("Table I: High-Level I/O behavior of applications",
		append([]string{"I/O Behavior"}, names(cols)...)...)
	t.AddRow(row(cols, "job time (sec)", func(c *core.Characterization) string {
		return Dur(c.Workflow.Runtime)
	})...)
	t.AddRow(row(cols, "% of I/O time", func(c *core.Characterization) string {
		if c.Workflow.Runtime == 0 {
			return "0%"
		}
		return fmt.Sprintf("%d%%", int(float64(c.Workflow.IOTime)/float64(c.Workflow.Runtime)*100+0.5))
	})...)
	t.AddRow(row(cols, "Write I/O", func(c *core.Characterization) string {
		return Bytes(c.Workflow.WriteBytes)
	})...)
	t.AddRow(row(cols, "Read I/O", func(c *core.Characterization) string {
		return Bytes(c.Workflow.ReadBytes)
	})...)
	t.AddRow(row(cols, "CPU Cores/node", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.CPUCoresUsedPerNode)
	})...)
	t.AddRow(row(cols, "# files used", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.FPPFiles + c.Workflow.SharedFiles)
	})...)
	t.AddRow(row(cols, "Shared file access", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.SharedFiles)
	})...)
	t.AddRow(row(cols, "FPP access", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.FPPFiles)
	})...)
	t.AddRow(row(cols, "Access Pattern", func(c *core.Characterization) string {
		return c.HighLevel.AccessPattern
	})...)
	t.AddRow(row(cols, "I/O Interface", func(c *core.Characterization) string {
		if len(c.Apps) == 0 {
			return "-"
		}
		// Dominant app's interface (highest I/O volume).
		best := c.Apps[0]
		for _, a := range c.Apps[1:] {
			if a.IOBytes > best.IOBytes {
				best = a
			}
		}
		return best.Interface
	})...)
	return t.Render()
}

// TableII renders the Job Configuration entity (Table II).
func TableII(cols []Named) string {
	t := NewTable("Table II: Attributes for Job Configuration Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "# nodes", func(c *core.Characterization) string {
		return fmt.Sprint(c.JobConfig.Nodes)
	})...)
	t.AddRow(row(cols, "# cpu cores per node", func(c *core.Characterization) string {
		return fmt.Sprint(c.JobConfig.CPUCoresPerNode)
	})...)
	t.AddRow(row(cols, "# gpu/node", func(c *core.Characterization) string {
		return fmt.Sprint(c.JobConfig.GPUsPerNode)
	})...)
	t.AddRow(row(cols, "Node-local BB dir", func(c *core.Characterization) string {
		return orNA(c.JobConfig.NodeLocalBBDir)
	})...)
	t.AddRow(row(cols, "Shared BB dir", func(c *core.Characterization) string {
		return orNA(c.JobConfig.SharedBBDir)
	})...)
	t.AddRow(row(cols, "PFS dir", func(c *core.Characterization) string {
		return c.JobConfig.PFSDir
	})...)
	t.AddRow(row(cols, "Job time", func(c *core.Characterization) string {
		return c.JobConfig.JobTime.String()
	})...)
	return t.Render()
}

// TableIII renders the Workflow entity (Table III).
func TableIII(cols []Named) string {
	t := NewTable("Table III: Attributes for Workflow Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "# CPU cores used/node", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.CPUCoresUsedPerNode)
	})...)
	t.AddRow(row(cols, "# GPUs used/node", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.GPUsUsedPerNode)
	})...)
	t.AddRow(row(cols, "# apps", func(c *core.Characterization) string {
		return fmt.Sprint(c.Workflow.NumApps)
	})...)
	t.AddRow(row(cols, "App data dependency", func(c *core.Characterization) string {
		if len(c.Workflow.AppDeps) == 0 {
			return "NA"
		}
		return fmt.Sprintf("%d edges", len(c.Workflow.AppDeps))
	})...)
	t.AddRow(row(cols, "FPP/shared file access", func(c *core.Characterization) string {
		return fmt.Sprintf("%d/%d", c.Workflow.FPPFiles, c.Workflow.SharedFiles)
	})...)
	t.AddRow(row(cols, "I/O amount", func(c *core.Characterization) string {
		return Bytes(c.Workflow.IOBytes)
	})...)
	t.AddRow(row(cols, "I/O ops dist (data, meta)", func(c *core.Characterization) string {
		return Pct(c.Workflow.DataOpsPct, c.Workflow.MetaOpsPct)
	})...)
	t.AddRow(row(cols, "Runtime (sec)", func(c *core.Characterization) string {
		return Dur(c.Workflow.Runtime)
	})...)
	return t.Render()
}

// TableIV renders the Application entity (Table IV), using each
// workload's highest-volume application.
func TableIV(cols []Named) string {
	t := NewTable("Table IV: Attributes for Application Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	app := func(c *core.Characterization) core.AppEntity {
		if len(c.Apps) == 0 {
			return core.AppEntity{}
		}
		best := c.Apps[0]
		for _, a := range c.Apps[1:] {
			if a.IOBytes > best.IOBytes {
				best = a
			}
		}
		return best
	}
	t.AddRow(row(cols, "app", func(c *core.Characterization) string {
		return app(c).Name
	})...)
	t.AddRow(row(cols, "# processes", func(c *core.Characterization) string {
		return fmt.Sprint(app(c).Processes)
	})...)
	t.AddRow(row(cols, "Process data dependency", func(c *core.Characterization) string {
		return string(app(c).ProcDep)
	})...)
	t.AddRow(row(cols, "FPP/shared file access", func(c *core.Characterization) string {
		a := app(c)
		return fmt.Sprintf("%d/%d", a.FPPFiles, a.SharedFiles)
	})...)
	t.AddRow(row(cols, "I/O amount", func(c *core.Characterization) string {
		return Bytes(app(c).IOBytes)
	})...)
	t.AddRow(row(cols, "I/O ops dist (data, meta)", func(c *core.Characterization) string {
		a := app(c)
		return Pct(a.DataOpsPct, a.MetaOpsPct)
	})...)
	t.AddRow(row(cols, "Interface", func(c *core.Characterization) string {
		return app(c).Interface
	})...)
	t.AddRow(row(cols, "Runtime", func(c *core.Characterization) string {
		return Dur(app(c).Runtime)
	})...)
	return t.Render()
}

// TableV renders the I/O Phase entity for the first phase (Table V).
func TableV(cols []Named) string {
	t := NewTable("Table V: Attributes for I/O Phase Entity Type (first phase)",
		append([]string{"Attribute"}, names(cols)...)...)
	first := func(c *core.Characterization) core.IOPhaseEntity {
		if len(c.Phases) == 0 {
			return core.IOPhaseEntity{}
		}
		return c.Phases[0]
	}
	t.AddRow(row(cols, "I/O amount", func(c *core.Characterization) string {
		return Bytes(first(c).IOBytes)
	})...)
	t.AddRow(row(cols, "I/O ops dist (data, meta)", func(c *core.Characterization) string {
		p := first(c)
		return Pct(p.DataOpsPct, p.MetaOpsPct)
	})...)
	t.AddRow(row(cols, "Frequency", func(c *core.Characterization) string {
		return first(c).Frequency
	})...)
	t.AddRow(row(cols, "Runtime", func(c *core.Characterization) string {
		return Dur(first(c).Runtime)
	})...)
	t.AddRow(row(cols, "# phases total", func(c *core.Characterization) string {
		return fmt.Sprint(len(c.Phases))
	})...)
	return t.Render()
}

// TableVI renders the High-Level I/O entity (Table VI).
func TableVI(cols []Named) string {
	t := NewTable("Table VI: Attributes for High-Level I/O Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "Data repr", func(c *core.Characterization) string {
		return c.HighLevel.DataRepr
	})...)
	t.AddRow(row(cols, "Granularity (write, read)", func(c *core.Characterization) string {
		return granStr(c.HighLevel.Granularity)
	})...)
	t.AddRow(row(cols, "Access pattern", func(c *core.Characterization) string {
		return c.HighLevel.AccessPattern
	})...)
	t.AddRow(row(cols, "Data dist", func(c *core.Characterization) string {
		return string(c.HighLevel.DataDist)
	})...)
	return t.Render()
}

// TableVII renders the Middleware I/O entity (Table VII).
func TableVII(cols []Named) string {
	t := NewTable("Table VII: Attributes for Middleware I/O Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "# extra cores for I/O/node", func(c *core.Characterization) string {
		return fmt.Sprint(c.Middleware.ExtraIOCoresPerNode)
	})...)
	t.AddRow(row(cols, "Granularity (write, read)", func(c *core.Characterization) string {
		return granStr(c.Middleware.Granularity)
	})...)
	t.AddRow(row(cols, "Memory/node", func(c *core.Characterization) string {
		return fmt.Sprintf("%dGB", c.Middleware.MemPerNodeGB)
	})...)
	t.AddRow(row(cols, "Access pattern", func(c *core.Characterization) string {
		return c.Middleware.AccessPattern
	})...)
	return t.Render()
}

// TableVIII renders the Node-Local Storage entity (Table VIII).
func TableVIII(c *core.Characterization) string {
	t := NewTable("Table VIII: Attributes for Node-Local Storage Entity Type",
		"Attribute", "Value")
	t.AddRow("# parallel ops (controller)", fmt.Sprint(c.NodeLocal.ParallelOps))
	t.AddRow("Capacity/node", Bytes(c.NodeLocal.CapacityBytes))
	t.AddRow("Max I/O bw/node", BW(float64(c.NodeLocal.MaxBWPerNode)))
	t.AddRow("Dir", orNA(c.NodeLocal.Dir))
	return t.Render()
}

// TableIX renders the Shared-Storage entity (Table IX).
func TableIX(c *core.Characterization, measuredBW float64) string {
	t := NewTable("Table IX: Attributes for Shared-Storage Entity Type",
		"Attribute", "Value")
	t.AddRow("# parallel servers", fmt.Sprint(c.Shared.ParallelServers))
	t.AddRow("Capacity", Bytes(c.Shared.CapacityBytes))
	bw := BW(float64(c.Shared.MaxBW))
	if measuredBW > 0 {
		bw = fmt.Sprintf("%s (measured %s using 32-node IOR)", bw, BW(measuredBW))
	}
	t.AddRow("Max I/O BW", bw)
	t.AddRow("Dir", orNA(c.Shared.Dir))
	return t.Render()
}

// TableX renders the Dataset entity (Table X).
func TableX(cols []Named) string {
	t := NewTable("Table X: Attributes for Dataset Entity Type",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "Format", func(c *core.Characterization) string {
		return c.Dataset.Format
	})...)
	t.AddRow(row(cols, "Size", func(c *core.Characterization) string {
		return Bytes(c.Dataset.SizeBytes)
	})...)
	t.AddRow(row(cols, "# of files", func(c *core.Characterization) string {
		return fmt.Sprint(c.Dataset.NumFiles)
	})...)
	t.AddRow(row(cols, "I/O", func(c *core.Characterization) string {
		return Bytes(c.Dataset.IOBytes)
	})...)
	t.AddRow(row(cols, "Time (sec)", func(c *core.Characterization) string {
		return Dur(c.Dataset.IOTime)
	})...)
	t.AddRow(row(cols, "I/O ops dist (data, meta)", func(c *core.Characterization) string {
		return Pct(c.Dataset.DataOpsPct, c.Dataset.MetaOpsPct)
	})...)
	t.AddRow(row(cols, "File size dist (data, config)", func(c *core.Characterization) string {
		return fmt.Sprintf("%s, %s", Bytes(c.Dataset.DataFileSize), Bytes(c.Dataset.MetaFileSize))
	})...)
	return t.Render()
}

// TableXI renders the File entity (Table XI) for each workload's
// representative data file.
func TableXI(cols []Named) string {
	t := NewTable("Table XI: Attributes for File Entity Type (data file)",
		append([]string{"Attribute"}, names(cols)...)...)
	t.AddRow(row(cols, "Format", func(c *core.Characterization) string {
		return c.File.Format
	})...)
	t.AddRow(row(cols, "Size", func(c *core.Characterization) string {
		return Bytes(c.File.SizeBytes)
	})...)
	t.AddRow(row(cols, "I/O", func(c *core.Characterization) string {
		return Bytes(c.File.IOBytes)
	})...)
	t.AddRow(row(cols, "Time (sec)", func(c *core.Characterization) string {
		return Dur(c.File.IOTime)
	})...)
	t.AddRow(row(cols, "I/O ops dist (data, meta)", func(c *core.Characterization) string {
		return Pct(c.File.DataOpsPct, c.File.MetaOpsPct)
	})...)
	t.AddRow(row(cols, "Format attributes", func(c *core.Characterization) string {
		a := c.File.Attrs
		parts := []string{
			fmt.Sprintf("chunk:%s", boolNA(a.Chunked)),
			fmt.Sprintf("#dims:%d", a.NDims),
			fmt.Sprintf("type:%s", a.DataType),
		}
		if a.Encoding != "" {
			parts = append(parts, "enc:"+a.Encoding)
		}
		return strings.Join(parts, " ")
	})...)
	return t.Render()
}

// AllTables renders Tables I-XI for a set of workloads, with the storage
// entities taken from the first characterization.
func AllTables(cols []Named, measuredPFSBW float64) string {
	var b strings.Builder
	b.WriteString(TableI(cols))
	b.WriteByte('\n')
	b.WriteString(TableII(cols))
	b.WriteByte('\n')
	b.WriteString(TableIII(cols))
	b.WriteByte('\n')
	b.WriteString(TableIV(cols))
	b.WriteByte('\n')
	b.WriteString(TableV(cols))
	b.WriteByte('\n')
	b.WriteString(TableVI(cols))
	b.WriteByte('\n')
	b.WriteString(TableVII(cols))
	b.WriteByte('\n')
	if len(cols) > 0 {
		b.WriteString(TableVIII(cols[0].C))
		b.WriteByte('\n')
		b.WriteString(TableIX(cols[0].C, measuredPFSBW))
		b.WriteByte('\n')
	}
	b.WriteString(TableX(cols))
	b.WriteByte('\n')
	b.WriteString(TableXI(cols))
	return b.String()
}

func names(cols []Named) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = c.Name
	}
	return out
}

func row(cols []Named, label string, f func(*core.Characterization) string) []string {
	cells := make([]string, 0, len(cols)+1)
	cells = append(cells, label)
	for _, c := range cols {
		cells = append(cells, f(c.C))
	}
	return cells
}

func granStr(g core.Granularity) string {
	switch {
	case g.Read == 0 && g.Write == 0:
		return "-"
	case g.Write == 0:
		return Bytes(g.Read)
	case g.Read == 0:
		return Bytes(g.Write)
	case g.Read == g.Write:
		return Bytes(g.Read)
	default:
		return fmt.Sprintf("%s-%s", Bytes(minI64(g.Read, g.Write)), Bytes(maxI64(g.Read, g.Write)))
	}
}

func orNA(s string) string {
	if s == "" {
		return "NA"
	}
	return s
}

func boolNA(b bool) string {
	if b {
		return "yes"
	}
	return "NA"
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PhaseTable renders every detected I/O phase of one workload — the full
// series Table V samples its "first phase" column from.
func PhaseTable(name string, c *core.Characterization) string {
	t := NewTable(fmt.Sprintf("I/O phases of %s (gap-separated bursts)", name),
		"#", "start", "runtime", "I/O", "ops dist (data, meta)", "ops/rank", "frequency")
	for _, p := range c.Phases {
		t.AddRow(fmt.Sprint(p.Index),
			Dur(p.Start), Dur(p.Runtime), Bytes(p.IOBytes),
			Pct(p.DataOpsPct, p.MetaOpsPct),
			fmt.Sprintf("%.1f", p.OpsPerRank), p.Frequency)
	}
	return t.Render()
}
