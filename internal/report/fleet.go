package report

// Fleet tables: the cross-trace aggregate a fleet query produces, rendered
// with the same table primitives as the paper's per-workload tables. The
// input is already deterministic (sha-sorted traces, fixed merge order), so
// the text renders byte-identical wherever the query ran.

import (
	"fmt"
	"sort"
	"strings"

	"vani/internal/repo"
)

// FleetTable renders a fleet report: the aggregate summary followed by one
// row per stored trace.
func FleetTable(fr *repo.FleetReport) string {
	scope := fr.Workload
	if scope == "" {
		scope = "all workloads"
	}
	agg := fr.Aggregate
	t := NewTable(fmt.Sprintf("Fleet summary: %s (%d runs)", scope, fr.Runs), "Metric", "Value")
	t.AddRow("total I/O", Bytes(agg.IOBytes))
	t.AddRow("read / write", fmt.Sprintf("%s / %s", Bytes(agg.ReadBytes), Bytes(agg.WriteBytes)))
	t.AddRow("read granule p50/p99", fmt.Sprintf("%s / %s",
		Bytes(int64(agg.ReadGranule.P50)), Bytes(int64(agg.ReadGranule.P99))))
	t.AddRow("write granule p50/p99", fmt.Sprintf("%s / %s",
		Bytes(int64(agg.WriteGranule.P50)), Bytes(int64(agg.WriteGranule.P99))))
	t.AddRow("I/O time p50/p99", fmt.Sprintf("%s / %s", Dur(agg.IOTimeP50), Dur(agg.IOTimeP99)))
	t.AddRow("interface mix", interfaceMix(agg.InterfaceMix))
	if agg.Regression.SlowestSHA != "" {
		t.AddRow("slowest vs fastest", fmt.Sprintf("%s vs %s (+%.1f%%)",
			shortSHA(agg.Regression.SlowestSHA), shortSHA(agg.Regression.FastestSHA),
			agg.Regression.DeltaPct))
	}
	out := t.Render()

	if len(fr.Traces) == 0 {
		return out
	}
	rt := NewTable("Fleet traces (sha order)",
		"Trace", "Runtime", "I/O time", "I/O amount", "R/W granule", "Interfaces", "Phases")
	for _, s := range fr.Traces {
		rt.AddRow(shortSHA(s.SHA), Dur(s.Runtime), Dur(s.IOTime), Bytes(s.IOBytes),
			fmt.Sprintf("%s/%s", Bytes(s.ReadGranule), Bytes(s.WriteGranule)),
			strings.Join(s.Interfaces, ","), fmt.Sprint(s.Phases))
	}
	return out + "\n" + rt.Render()
}

// interfaceMix renders "posix:3 stdio:1" in name order ("-" when empty).
func interfaceMix(mix map[string]int) string {
	if len(mix) == 0 {
		return "-"
	}
	names := make([]string, 0, len(mix))
	for n := range mix {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s:%d", n, mix[n])
	}
	return strings.Join(parts, " ")
}

func shortSHA(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}
