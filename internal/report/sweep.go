package report

// Sweep tables: a what-if sweep's comparative report rendered with the
// same table primitives as the paper's per-workload tables. The report is
// already deterministic (points in grid order, fixed winner rule), so the
// text renders byte-identical wherever the sweep ran.

import (
	"fmt"
	"strings"

	"vani/internal/spec"
)

// SweepTable renders a sweep report: one row per grid point, the winner
// with its speedups, the advisor's baseline verdicts, and the replayed
// stripe trials.
func SweepTable(rep *spec.SweepReport) string {
	t := NewTable(fmt.Sprintf("Sweep %s: %s, %d nodes x %d ranks/node (%d points)",
		rep.Name, rep.Workload, rep.Nodes, rep.RanksPerNode, len(rep.Points)),
		"Point", "Config", "I/O time", "Runtime")
	for _, p := range rep.Points {
		t.AddRow(fmt.Sprint(p.Index), settingsString(p.Config), Dur(p.IOTime), Dur(p.Runtime))
	}
	out := t.Render()

	wt := NewTable("Winner vs baseline (point 0)", "Metric", "Value")
	wt.AddRow("winner", fmt.Sprintf("point %d: %s", rep.Winner.Index, settingsString(rep.Winner.Config)))
	wt.AddRow("I/O speedup", rep.Winner.IOSpeedup)
	wt.AddRow("runtime speedup", rep.Winner.RuntimeSpeedup)
	out += "\n" + wt.Render()

	if len(rep.Recommendations) > 0 {
		at := NewTable("Advisor on the baseline", "Parameter", "Value")
		for _, r := range rep.Recommendations {
			at.AddRow(r.Parameter, r.Value)
		}
		out += "\n" + at.Render()
	}
	if len(rep.StripeTrials) > 0 {
		st := NewTable("Replayed stripe trials (baseline trace, fastest first)",
			"Candidate", "I/O time", "Runtime")
		for _, tr := range rep.StripeTrials {
			st.AddRow(tr.Name, Dur(tr.IOTime), Dur(tr.Runtime))
		}
		out += "\n" + st.Render()
	}
	return out
}

// settingsString renders "staging=node-local hdf5_chunked=true".
func settingsString(cfg []spec.SweepSetting) string {
	parts := make([]string, len(cfg))
	for i, s := range cfg {
		parts[i] = s.Param + "=" + s.Value
	}
	return strings.Join(parts, " ")
}
