// Package report renders characterizations as the paper presents them:
// aligned text tables (Tables I-XI), request-size/bandwidth histograms
// (the figures' (a) panels), dependency summaries ((b) panels), and I/O
// timelines ((c) panels).
package report

import (
	"fmt"
	"strings"
	"time"

	"vani/internal/core"
	"vani/internal/stats"
)

// Table accumulates rows and renders an aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.headers) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// Render returns the aligned table text.
func (t *Table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		b.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	b.WriteString("|")
	for _, w := range widths {
		b.WriteString(strings.Repeat("-", w+2))
		b.WriteString("|")
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// Pct renders a (data, meta) op split as the tables do: "30%, 70%".
func Pct(data, meta float64) string {
	d, m := core.PctPair(data, meta)
	return fmt.Sprintf("%d%%, %d%%", d, m)
}

// Bytes renders a byte count table-style.
func Bytes(b int64) string { return core.SizeString(b) }

// BW renders a bytes/sec rate ("64MB/s", "3.5GB/s").
func BW(bytesPerSec float64) string {
	return core.SizeString(int64(bytesPerSec)) + "/s"
}

// Dur renders durations at table precision (seconds).
func Dur(d time.Duration) string {
	if d < time.Second {
		return fmt.Sprintf("%.2gs", d.Seconds())
	}
	return fmt.Sprintf("%.0fs", d.Seconds())
}

// Histogram renders a SizeHistogram as the figures' (a) panel: request
// count and achieved bandwidth per size bucket, with proportional bars.
func Histogram(title string, h *stats.SizeHistogram) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var maxCount int64
	for _, c := range h.Count {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		b.WriteString("  (no requests)\n")
		return b.String()
	}
	for bucket := stats.SizeBucket(0); bucket < stats.NumSizeBuckets; bucket++ {
		c := h.Count[bucket]
		barLen := int(float64(c) / float64(maxCount) * 40)
		if c > 0 && barLen == 0 {
			barLen = 1
		}
		bw := "-"
		if c > 0 {
			bw = BW(h.Bandwidth(bucket))
		}
		fmt.Fprintf(&b, "  %-9s %9d ops  %10s  %s\n",
			bucket.String(), c, bw, strings.Repeat("#", barLen))
	}
	return b.String()
}

// Timeline renders a stats.Timeline as the figures' (c) panel: a bar per
// bin scaled to the peak rate.
func Timeline(title string, tl *stats.Timeline, span time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (peak %s)\n", title, BW(tl.PeakRate()))
	peak := tl.PeakRate()
	if peak == 0 {
		b.WriteString("  (idle)\n")
		return b.String()
	}
	binDur := span / time.Duration(tl.Bins())
	for i := 0; i < tl.Bins(); i++ {
		r := tl.Rate(i)
		barLen := int(r / peak * 50)
		if r > 0 && barLen == 0 {
			barLen = 1
		}
		if r == 0 {
			continue // compress idle bins
		}
		fmt.Fprintf(&b, "  t=%-8s %10s %s\n",
			Dur(time.Duration(i)*binDur), BW(r), strings.Repeat("#", barLen))
	}
	return b.String()
}

// Flows renders the dependency (b) panel: the highest-volume files with
// their writer/reader fan-in and fan-out.
func Flows(title string, flows []core.FileFlow) string {
	t := NewTable(title, "file", "writers", "readers", "written", "read", "opens")
	for _, f := range flows {
		t.AddRow(shorten(f.Path, 44),
			fmt.Sprint(f.WriterRanks), fmt.Sprint(f.ReaderRanks),
			Bytes(f.BytesWritten), Bytes(f.BytesRead), fmt.Sprint(f.Opens))
	}
	return t.Render()
}

// RankBWSummary renders the per-rank bandwidth distribution (Figure 2c):
// min, median, and max achieved write and read bandwidth across ranks.
func RankBWSummary(rbw []core.RankBandwidth) string {
	if len(rbw) == 0 {
		return "(no per-rank data)\n"
	}
	var reads, writes []float64
	for _, r := range rbw {
		if r.ReadBW > 0 {
			reads = append(reads, r.ReadBW)
		}
		if r.WriteBW > 0 {
			writes = append(writes, r.WriteBW)
		}
	}
	var b strings.Builder
	line := func(label string, xs []float64) {
		if len(xs) == 0 {
			return
		}
		fmt.Fprintf(&b, "  %-6s min %10s  p50 %10s  max %10s  across %d ranks\n",
			label, BW(stats.Percentile(xs, 0)), BW(stats.Percentile(xs, 50)),
			BW(stats.Percentile(xs, 100)), len(xs))
	}
	b.WriteString("per-rank achieved bandwidth:\n")
	line("write", writes)
	line("read", reads)
	return b.String()
}

// Figure renders all three panels of a workload's figure.
func Figure(c *core.Characterization) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Figure: I/O behavior of %s ===\n", c.Workload)
	b.WriteString(Histogram("(a) read request sizes & bandwidth", &c.Figure.ReadHist))
	b.WriteString(Histogram("(a) write request sizes & bandwidth", &c.Figure.WriteHist))
	b.WriteString(Flows("(b) process/data dependency (top files)", c.Figure.TopFlows))
	b.WriteString(Timeline("(c) read timeline", c.Figure.ReadTL, c.Workflow.Runtime))
	b.WriteString(Timeline("(c) write timeline", c.Figure.WriteTL, c.Workflow.Runtime))
	b.WriteString(RankBWSummary(c.Figure.RankBW))
	return b.String()
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "..." + s[len(s)-n+3:]
}
