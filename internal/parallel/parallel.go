// Package parallel provides the bounded worker pool the chunked analysis
// pipeline fans out on.
//
// The paper's Analyzer converts traces to a columnar store precisely so the
// heavy filter/aggregate scans can run partitioned and in parallel (parquet
// + DASK). Every parallel scan in this repository goes through ForEach: the
// caller splits work into indexed units (column chunks, trace shards),
// workers fill per-index result slots, and the caller reduces the slots in
// index order. Keeping the reduction on the caller's side is what makes the
// parallel paths bit-identical to the sequential ones.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Degree resolves a requested parallelism: values <= 0 mean GOMAXPROCS.
func Degree(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// ForEach invokes fn(i) for every i in [0, n), running at most workers
// invocations concurrently. workers <= 0 means GOMAXPROCS; a resolved
// degree of 1 (or n <= 1) runs inline on the calling goroutine with no
// synchronization overhead, so sequential configurations pay nothing.
//
// fn must write its result into a per-index slot; ForEach makes no ordering
// guarantee between concurrent invocations. A panic in any invocation is
// re-raised on the calling goroutine after all workers have drained.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Degree(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicky any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicky == nil {
						panicky = r
					}
					panicMu.Unlock()
					// Drain remaining work so sibling workers exit promptly.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicky != nil {
		panic(fmt.Sprintf("parallel: worker panic: %v", panicky))
	}
}
