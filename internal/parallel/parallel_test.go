package parallel

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(i int) { called = true })
	ForEach(4, -3, func(i int) { called = true })
	if called {
		t.Error("fn called for empty range")
	}
}

func TestForEachInlineWhenSequential(t *testing.T) {
	// workers=1 must run on the calling goroutine, in order.
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline path out of order: %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var active, peak int32
	ForEach(workers, 100, func(i int) {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&active, -1)
	})
	if peak > workers {
		t.Errorf("observed %d concurrent invocations, bound is %d", peak, workers)
	}
}

func TestForEachPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Errorf("panic value = %v", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 13 {
			panic("boom")
		}
	})
}

func TestDegree(t *testing.T) {
	if Degree(3) != 3 {
		t.Error("explicit degree not honored")
	}
	if Degree(0) < 1 || Degree(-1) < 1 {
		t.Error("default degree not positive")
	}
}
